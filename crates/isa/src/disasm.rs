//! Disassembler for superset-ISA machine code.
//!
//! Where [`encoding::InstLengthDecoder`](crate::encoding::InstLengthDecoder)
//! only computes lengths (the hardware ILD's job), the disassembler
//! recovers the full structural form: opcode group, prefixes (REX,
//! REXBC, predicate), ModRM register fields, addressing mode,
//! displacement and immediate widths. Useful for debugging compiled
//! code and property-tested to invert the encoder.

use std::fmt;

use crate::encoding::{DecodeError, PREDICATE_MARKER, REXBC_MARKER};
use crate::error::StreamError;
use crate::inst::{AddressingMode, MacroOpcode};

/// A disassembled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disassembled {
    /// Opcode group.
    pub opcode: MacroOpcode,
    /// Total length in bytes.
    pub len: u8,
    /// REX prefix present.
    pub has_rex: bool,
    /// REX.W (64-bit operand) set.
    pub rex_w: bool,
    /// REXBC prefix present (registers 16..64 addressable).
    pub has_rexbc: bool,
    /// Predicate register, if the predicate prefix is present.
    pub predicate: Option<(u8, bool)>,
    /// ModRM `reg` field (extended with REX.R / REXBC bits when present).
    pub reg: Option<u8>,
    /// ModRM `rm` field or memory base (extended likewise).
    pub rm: Option<u8>,
    /// SIB index register (extended likewise), when the instruction has
    /// a base+index addressing mode.
    pub index: Option<u8>,
    /// Addressing mode, if the instruction has a memory operand.
    pub mode: Option<AddressingMode>,
    /// Displacement width in bytes.
    pub disp_bytes: u8,
    /// Immediate width in bytes.
    pub imm_bytes: u8,
    /// Immediate value, sign-extended from its encoded width (0 when
    /// `imm_bytes` is 0). Branch/jump/call displacements are relative to
    /// the end of the instruction.
    pub imm: i32,
}

impl fmt::Display for Disassembled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, neg)) = self.predicate {
            write!(f, "({}r{p}) ", if neg { "!" } else { "" })?;
        }
        write!(f, "{:?}", self.opcode)?;
        if let Some(r) = self.reg {
            write!(f, " r{r}")?;
        }
        match (self.mode, self.rm) {
            (Some(m), Some(rm)) => write!(f, ", [r{rm} {m:?} disp{}]", self.disp_bytes)?,
            (None, Some(rm)) => write!(f, ", r{rm}")?,
            _ => {}
        }
        if self.imm_bytes > 0 {
            write!(f, ", imm{}", self.imm_bytes)?;
        }
        Ok(())
    }
}

/// Maps opcode bytes back to their [`MacroOpcode`] group and whether a
/// ModRM byte follows / an immediate of which width.
fn opcode_of(first: u8, second: Option<u8>) -> Option<(MacroOpcode, bool, u8)> {
    Some(match (first, second) {
        (0x89, _) => (MacroOpcode::Mov, true, 0),
        // B0+rb / B8+rd: the mov-immediate destination register's low 3
        // bits live in the opcode byte, like real x86.
        (0xB0..=0xB7, _) => (MacroOpcode::Mov, false, 1),
        (0xB8..=0xBF, _) => (MacroOpcode::Mov, false, 4),
        (0xC6, _) => (MacroOpcode::Mov, true, 1),
        (0xC7, _) => (MacroOpcode::Mov, true, 4),
        (0x01, _) => (MacroOpcode::IntAlu, true, 0),
        (0x83, _) => (MacroOpcode::IntAlu, true, 1),
        (0x81, _) => (MacroOpcode::IntAlu, true, 4),
        (0x0F, Some(0xAF)) => (MacroOpcode::IntMul, true, 0),
        (0x8D, _) => (MacroOpcode::Lea, true, 0),
        (0x8B, _) => (MacroOpcode::Load, true, 0),
        (0x88, _) => (MacroOpcode::Store, true, 0),
        (0x0F, Some(0x58)) => (MacroOpcode::FpAlu, true, 0),
        (0x0F, Some(0x59)) => (MacroOpcode::FpMul, true, 0),
        (0x0F, Some(0xFE)) => (MacroOpcode::VecAlu, true, 0),
        (0x0F, Some(0x84)) => (MacroOpcode::Branch, false, 4),
        (0x0F, Some(0x44)) => (MacroOpcode::Cmov, true, 0),
        (0xE9, _) => (MacroOpcode::Jump, false, 4),
        (0xE8, _) => (MacroOpcode::Call, false, 4),
        (0xC3, _) => (MacroOpcode::Ret, false, 0),
        (0x90, _) => (MacroOpcode::Nop, false, 0),
        _ => return None,
    })
}

/// Disassembles the instruction at the start of `bytes`.
///
/// # Errors
///
/// Returns the same [`DecodeError`]s as the length decoder: truncated
/// streams and unknown opcodes.
pub fn disassemble(bytes: &[u8]) -> Result<Disassembled, DecodeError> {
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Result<u8, DecodeError> {
        let b = *bytes.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        Ok(b)
    };

    let mut b = next(&mut pos)?;
    while matches!(b, 0x66 | 0x67 | 0xF2 | 0xF3 | 0x2E | 0x3E) {
        b = next(&mut pos)?;
    }
    let mut has_rexbc = false;
    let mut rexbc_payload = 0u8;
    if b == REXBC_MARKER {
        has_rexbc = true;
        rexbc_payload = next(&mut pos)?;
        b = next(&mut pos)?;
    }
    let mut predicate = None;
    if b == PREDICATE_MARKER {
        let payload = next(&mut pos)?;
        predicate = Some((payload & 0x7F, payload & 0x80 != 0));
        b = next(&mut pos)?;
    }
    let mut has_rex = false;
    let mut rex = 0u8;
    if (0x40..=0x4F).contains(&b) {
        has_rex = true;
        rex = b & 0x0F;
        b = next(&mut pos)?;
    }
    let (opcode, has_modrm, imm_bytes) = if b == 0x0F {
        let b2 = next(&mut pos)?;
        opcode_of(0x0F, Some(b2)).ok_or(DecodeError::UnknownOpcode(b2))?
    } else {
        opcode_of(b, None).ok_or(DecodeError::UnknownOpcode(b))?
    };

    // Reassemble extended register numbers: 3 ModRM/SIB/opcode bits +
    // 1 REX bit + 2 REXBC bits.
    let rex_r = (rex >> 2) & 1;
    let rex_x = (rex >> 1) & 1;
    let rex_b = rex & 1;
    let bc_r = (rexbc_payload >> 6) & 0x3;
    let bc_x = (rexbc_payload >> 4) & 0x3;
    let bc_b = (rexbc_payload >> 2) & 0x3;

    let mut reg = None;
    let mut rm = None;
    let mut index = None;
    let mut mode = None;
    let mut disp_bytes = 0u8;
    if !has_modrm && (0xB0..=0xBF).contains(&b) {
        // B0+rb / B8+rd mov-immediate: the destination's low 3 bits sit
        // in the opcode byte; its high bits borrow the REX.b / REXBC
        // base-extension bits (there is no rm operand to collide with).
        reg = Some((b & 0x7) | (rex_b << 3) | (bc_b << 4));
    }
    if has_modrm {
        let modrm = next(&mut pos)?;
        let mod_bits = modrm >> 6;
        let reg_low = (modrm >> 3) & 0x7;
        let rm_low = modrm & 0x7;
        reg = Some(reg_low | (rex_r << 3) | (bc_r << 4));
        let mut base = rm_low | (rex_b << 3) | (bc_b << 4);
        if mod_bits != 0b11 && rm_low == 0b100 {
            let sib = next(&mut pos)?;
            let sib_base = sib & 0x7;
            base = sib_base | (rex_b << 3) | (bc_b << 4);
            // SIB index 0b100 with no extension bits means "no index"
            // (the encoder's escape for base-only forms).
            let full_index = ((sib >> 3) & 0x7) | (rex_x << 3) | (bc_x << 4);
            mode = Some(if full_index == 0b100 {
                AddressingMode::BaseOnly
            } else {
                index = Some(full_index);
                AddressingMode::BaseIndexScaleDisp
            });
        }
        disp_bytes = match (mod_bits, rm_low) {
            (0b00, 0b101) => {
                mode = Some(AddressingMode::Absolute);
                4
            }
            (0b01, _) => 1,
            (0b10, _) => 4,
            _ => disp_bytes,
        };
        if mod_bits != 0b11 && mode.is_none() {
            mode = Some(if disp_bytes > 0 {
                AddressingMode::BaseDisp
            } else {
                AddressingMode::BaseOnly
            });
        }
        if mod_bits != 0b11 && mode == Some(AddressingMode::BaseOnly) && disp_bytes > 0 {
            mode = Some(AddressingMode::BaseDisp);
        }
        rm = Some(base);
        for _ in 0..disp_bytes {
            next(&mut pos)?;
        }
    }
    let imm_start = pos;
    for _ in 0..imm_bytes {
        next(&mut pos)?;
    }
    let imm = match bytes.get(imm_start..pos) {
        Some(&[b0]) => b0 as i8 as i32,
        Some(&[b0, b1, b2, b3]) => i32::from_le_bytes([b0, b1, b2, b3]),
        _ => 0,
    };

    Ok(Disassembled {
        opcode,
        len: pos as u8,
        has_rex,
        rex_w: has_rex && (rex & 0x8) != 0,
        has_rexbc,
        predicate,
        reg,
        rm,
        index,
        mode,
        disp_bytes,
        imm_bytes,
        imm,
    })
}

/// A disassembled instruction together with its byte position in the
/// stream it came from.
///
/// The offsets are the stable program-point coordinates static analyses
/// key on (CFG leaders, migration points): `offset` is the first byte
/// of the instruction and `offset + inst.len` is the first byte of its
/// successor, so branch targets resolve without re-deriving lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpannedInst {
    /// Byte offset of the instruction's first byte within the stream.
    pub offset: usize,
    /// The disassembled instruction (its `len` gives the span width).
    pub inst: Disassembled,
}

/// Disassembles a whole stream, recording each instruction's byte
/// offset.
///
/// # Errors
///
/// Fails on the first undecodable instruction. The [`StreamError`]
/// reports the failing instruction's index and how many bytes were
/// consumed by the instructions that decoded cleanly before it.
pub fn disassemble_stream_with_offsets(mut bytes: &[u8]) -> Result<Vec<SpannedInst>, StreamError> {
    let mut out: Vec<SpannedInst> = Vec::new();
    let mut offset = 0usize;
    while !bytes.is_empty() {
        let inst = disassemble(bytes).map_err(|source| StreamError {
            offset,
            index: out.len(),
            source,
        })?;
        out.push(SpannedInst { offset, inst });
        offset += inst.len as usize;
        bytes = &bytes[inst.len as usize..];
    }
    Ok(out)
}

/// Disassembles a whole stream.
///
/// # Errors
///
/// Fails on the first undecodable instruction. The [`StreamError`]
/// reports the failing instruction's index and how many bytes were
/// consumed by the instructions that decoded cleanly before it.
pub fn disassemble_stream(bytes: &[u8]) -> Result<Vec<Disassembled>, StreamError> {
    Ok(disassemble_stream_with_offsets(bytes)?
        .into_iter()
        .map(|s| s.inst)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;
    use crate::error::IsaError;
    use crate::inst::{MachineInst, MemLocality, MemOperand, Operand};
    use crate::{ArchReg, FeatureSet};

    /// Round-trips one instruction through encode + disassemble,
    /// propagating encode/decode errors instead of unwrapping so a
    /// failure reports the full instruction-context diagnostic.
    fn roundtrip(inst: &MachineInst) -> Result<Disassembled, IsaError> {
        let enc = Encoder::new(FeatureSet::superset())
            .encode(inst)
            .map_err(|source| IsaError::Encode { index: 0, source })?;
        let d = disassemble(&enc.bytes).map_err(|source| StreamError {
            offset: 0,
            index: 0,
            source,
        })?;
        assert_eq!(d.len as usize, enc.len(), "{inst}");
        assert_eq!(d.opcode, canonical_group(inst.opcode), "{inst}");
        assert_eq!(d.has_rexbc, enc.has_rexbc, "{inst}");
        assert_eq!(d.predicate.is_some(), enc.has_predicate, "{inst}");
        Ok(d)
    }

    /// Mov-with-immediate reuses ALU opcodes in display; canonical group
    /// for comparison.
    fn canonical_group(op: MacroOpcode) -> MacroOpcode {
        op
    }

    #[test]
    fn disassembles_plain_alu() -> Result<(), IsaError> {
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(3),
            Operand::Reg(ArchReg::gpr(5)),
            Operand::Reg(ArchReg::gpr(6)),
        );
        let d = roundtrip(&i)?;
        assert_eq!(d.reg, Some(3));
        assert!(!d.has_rex);
        assert_eq!(d.mode, None);
        Ok(())
    }

    #[test]
    fn recovers_extended_registers() -> Result<(), IsaError> {
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(45),
            Operand::Reg(ArchReg::gpr(2)),
            Operand::None,
        );
        let d = roundtrip(&i)?;
        // 45 = 0b101101: low 3 bits 101, REX.R bit 1, REXBC bits 10.
        assert_eq!(d.reg, Some(45));
        assert!(d.has_rexbc);
        assert!(d.has_rex);
        Ok(())
    }

    #[test]
    fn recovers_predicates() -> Result<(), IsaError> {
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(1),
            Operand::Reg(ArchReg::gpr(2)),
            Operand::None,
        )
        .predicated_on(ArchReg::gpr(9), true);
        let d = roundtrip(&i)?;
        assert_eq!(d.predicate, Some((9, true)));
        assert!(d.to_string().starts_with("(!r9)"));
        Ok(())
    }

    #[test]
    fn recovers_memory_bases() -> Result<(), IsaError> {
        let i = MachineInst::load(
            ArchReg::gpr(1),
            MemOperand::base_disp(ArchReg::gpr(20), 4, MemLocality::Stream),
        );
        let d = roundtrip(&i)?;
        assert_eq!(d.opcode, MacroOpcode::Load);
        assert_eq!(d.rm, Some(20));
        assert_eq!(d.mode, Some(AddressingMode::BaseDisp));
        assert_eq!(d.disp_bytes, 4);
        Ok(())
    }

    #[test]
    fn recovers_wide_flag() -> Result<(), IsaError> {
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(1),
            Operand::Reg(ArchReg::gpr(2)),
            Operand::None,
        )
        .wide();
        let d = roundtrip(&i)?;
        assert!(d.rex_w);
        Ok(())
    }

    #[test]
    fn stream_disassembly() -> Result<(), IsaError> {
        let enc = Encoder::new(FeatureSet::superset());
        let insts = [
            MachineInst::compute(
                MacroOpcode::IntAlu,
                ArchReg::gpr(20),
                Operand::Reg(ArchReg::gpr(2)),
                Operand::None,
            ),
            MachineInst::branch(),
            MachineInst::jump(),
        ];
        let stream = enc.encode_stream(&insts)?;
        let ds = disassemble_stream(&stream)?;
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[1].opcode, MacroOpcode::Branch);
        assert_eq!(ds[2].opcode, MacroOpcode::Jump);
        Ok(())
    }

    #[test]
    fn stream_offsets_roundtrip_encoded_lengths() -> Result<(), IsaError> {
        // Pin: `disassemble_stream_with_offsets` reports exactly the
        // offsets at which the encoder placed each instruction (the
        // prefix sums of the encoded lengths), so CFG leader detection
        // can key on them without re-deriving lengths.
        let enc = Encoder::new(FeatureSet::superset());
        let insts = [
            MachineInst::compute(
                MacroOpcode::IntAlu,
                ArchReg::gpr(40),
                Operand::Reg(ArchReg::gpr(2)),
                Operand::None,
            ),
            MachineInst::compute(
                MacroOpcode::Mov,
                ArchReg::gpr(3),
                Operand::Imm(4),
                Operand::None,
            ),
            MachineInst::load(
                ArchReg::gpr(1),
                MemOperand::base_disp(ArchReg::gpr(20), 4, MemLocality::Stream),
            ),
            MachineInst::branch(),
            MachineInst::jump(),
        ];
        let mut stream = Vec::new();
        let mut expected = Vec::new();
        for i in &insts {
            expected.push(stream.len());
            stream.extend_from_slice(
                &enc.encode(i)
                    .map_err(|source| IsaError::Encode { index: 0, source })?
                    .bytes,
            );
        }
        let spanned = disassemble_stream_with_offsets(&stream)?;
        let offsets: Vec<usize> = spanned.iter().map(|s| s.offset).collect();
        assert_eq!(offsets, expected);
        let last = spanned.last().expect("non-empty stream");
        assert_eq!(last.offset + last.inst.len as usize, stream.len());
        // The plain stream API stays a projection of the spanned one.
        let plain = disassemble_stream(&stream)?;
        let projected: Vec<Disassembled> = spanned.iter().map(|s| s.inst).collect();
        assert_eq!(plain, projected);
        Ok(())
    }

    #[test]
    fn mov_immediate_recovers_destination() -> Result<(), IsaError> {
        // The B0+rb / B8+rd forms carry the destination in the opcode
        // byte plus the REX.b / REXBC base-extension bits.
        for dst in [0u8, 3, 7, 9, 15, 20, 45, 63] {
            let i = MachineInst::compute(
                MacroOpcode::Mov,
                ArchReg::gpr(dst),
                Operand::Imm(4),
                Operand::None,
            );
            let d = roundtrip(&i)?;
            assert_eq!(d.reg, Some(dst), "mov-imm dst {dst}");
            assert_eq!(d.imm_bytes, 4);
        }
        let i8form = MachineInst::compute(
            MacroOpcode::Mov,
            ArchReg::gpr(11),
            Operand::Imm(1),
            Operand::None,
        );
        let d = roundtrip(&i8form)?;
        assert_eq!(d.reg, Some(11));
        assert_eq!(d.imm_bytes, 1);
        Ok(())
    }

    #[test]
    fn recovers_sib_index_register() -> Result<(), IsaError> {
        for idx in [3u8, 12, 20, 36] {
            let i = MachineInst::load(
                ArchReg::gpr(1),
                MemOperand::base_index(ArchReg::gpr(2), ArchReg::gpr(idx), 4, MemLocality::Stream),
            );
            let d = roundtrip(&i)?;
            assert_eq!(
                d.mode,
                Some(AddressingMode::BaseIndexScaleDisp),
                "idx {idx}"
            );
            assert_eq!(d.index, Some(idx), "idx {idx}");
        }
        // Base-only forms report no index.
        let plain = MachineInst::load(
            ArchReg::gpr(1),
            MemOperand::base_only(ArchReg::gpr(4), MemLocality::Stack),
        );
        let d = roundtrip(&plain)?;
        assert_eq!(d.index, None);
        Ok(())
    }

    #[test]
    fn recovers_immediate_values() -> Result<(), IsaError> {
        // The encoder emits deterministic placeholder immediates
        // (0x20, 0x21, ...); the disassembler must read them back as a
        // little-endian signed value.
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(1),
            Operand::Imm(4),
            Operand::None,
        );
        let d = roundtrip(&i)?;
        assert_eq!(d.imm, i32::from_le_bytes([0x20, 0x21, 0x22, 0x23]));
        // Sign extension of one-byte immediates.
        let neg = disassemble(&[0x83, 0xC8, 0xFF]).map_err(|source| StreamError {
            offset: 0,
            index: 0,
            source,
        })?;
        assert_eq!(neg.imm, -1);
        Ok(())
    }

    #[test]
    fn errors_match_the_ild() {
        assert_eq!(disassemble(&[]), Err(DecodeError::Truncated));
        assert_eq!(disassemble(&[0xFF]), Err(DecodeError::UnknownOpcode(0xFF)));
    }

    #[test]
    fn stream_errors_carry_consumed_bytes() -> Result<(), IsaError> {
        let enc = Encoder::new(FeatureSet::superset());
        let good = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(1),
            Operand::Reg(ArchReg::gpr(2)),
            Operand::None,
        );
        let mut stream = enc.encode_stream(&[good, good])?;
        let clean = stream.len();
        stream.extend_from_slice(&[0xFF, 0x00]);
        let err = disassemble_stream(&stream).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.consumed(), clean);
        assert_eq!(err.source, DecodeError::UnknownOpcode(0xFF));
        Ok(())
    }
}
