//! Architectural registers of the superset ISA.
//!
//! The superset ISA exposes up to 64 general-purpose registers (the
//! first 16 are the classic x86-64 file; registers 16..64 are the
//! REXBC-prefixed extension) plus 16 xmm vector registers. Every GPR is
//! addressable as a byte, word, doubleword or quadword sub-register with
//! no x86-style pairing restrictions (the REXBC prefix lifts those).

use std::fmt;

use crate::feature_set::{FeatureSet, RegisterDepth};

/// Register class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General-purpose integer register.
    Gpr,
    /// SSE vector register (also used for fat-pointer emulation during
    /// width downgrades).
    Xmm,
}

/// Sub-register view of a GPR (Section III, "Register Width": compilers
/// address sub-registers to enhance effective register depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SubRegister {
    /// Low 8 bits (`al`-like).
    Byte,
    /// Low 16 bits (`ax`-like).
    Word,
    /// Low 32 bits (`eax`-like).
    DoubleWord,
    /// Full 64 bits (`rax`-like).
    QuadWord,
}

impl SubRegister {
    /// View width in bits.
    pub fn bits(self) -> u32 {
        match self {
            SubRegister::Byte => 8,
            SubRegister::Word => 16,
            SubRegister::DoubleWord => 32,
            SubRegister::QuadWord => 64,
        }
    }
}

/// An architectural register of the superset ISA.
///
/// GPR indices run 0..64; xmm indices 0..16. Whether a particular index
/// is *usable* depends on the feature set's register depth — see
/// [`ArchReg::available_in`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Maximum number of GPRs in the superset ISA.
    pub const MAX_GPRS: u8 = 64;
    /// Number of xmm registers.
    pub const NUM_XMM: u8 = 16;

    /// Creates a GPR.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub fn gpr(index: u8) -> Self {
        assert!(index < Self::MAX_GPRS, "GPR index {index} out of range");
        ArchReg {
            class: RegClass::Gpr,
            index,
        }
    }

    /// Creates an xmm register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn xmm(index: u8) -> Self {
        assert!(index < Self::NUM_XMM, "xmm index {index} out of range");
        ArchReg {
            class: RegClass::Xmm,
            index,
        }
    }

    /// Register class.
    #[inline]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// Register index within its class.
    #[inline]
    pub fn index(self) -> u8 {
        self.index
    }

    /// Whether this register exists under the given feature set.
    ///
    /// GPRs require `index < depth`; xmm registers require SSE support.
    pub fn available_in(self, fs: &FeatureSet) -> bool {
        match self.class {
            RegClass::Gpr => (self.index as u32) < fs.depth().count(),
            RegClass::Xmm => fs.simd() == crate::feature_set::SimdSupport::Sse,
        }
    }

    /// Number of *prefix* encoding bits this register costs beyond the 3
    /// ModRM/SIB bits: 0 for registers 0..8 (legacy), 1 for 8..16 (REX),
    /// 3 for 16..64 (REXBC adds 2 more on top of REX).
    ///
    /// The compiler's register allocator prioritizes low-cost registers
    /// ("associate code density costs ... always prioritize the
    /// allocation of a register that requires fewer prefix bits").
    pub fn prefix_bit_cost(self) -> u32 {
        match self.class {
            RegClass::Xmm => 0,
            RegClass::Gpr => match self.index {
                0..=7 => 0,
                8..=15 => 1,
                _ => 3,
            },
        }
    }

    /// The narrowest prefix tier that can encode this register:
    /// the legacy 3-bit field, the REX 4th bit, or the REXBC extension.
    pub fn encoding_tier(self) -> EncodingTier {
        match self.class {
            RegClass::Xmm => EncodingTier::Legacy,
            RegClass::Gpr => match self.index {
                0..=7 => EncodingTier::Legacy,
                8..=15 => EncodingTier::Rex,
                _ => EncodingTier::Rexbc,
            },
        }
    }

    /// Iterator over the GPRs available at a given register depth, in
    /// allocation-priority order (cheapest encoding first).
    pub fn gprs_at_depth(depth: RegisterDepth) -> impl Iterator<Item = ArchReg> {
        (0..depth.count() as u8).map(ArchReg::gpr)
    }
}

/// Which encoding tier a register requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EncodingTier {
    /// Encodable in a bare ModRM/SIB 3-bit field.
    Legacy,
    /// Needs a REX prefix bit (registers 8..16).
    Rex,
    /// Needs the 2-byte REXBC prefix (registers 16..64).
    Rexbc,
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Gpr => write!(f, "r{}", self.index),
            RegClass::Xmm => write!(f, "xmm{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_set::{Complexity, FeatureSet, Predication, RegisterWidth};

    #[test]
    fn prefix_cost_tiers() {
        assert_eq!(ArchReg::gpr(0).prefix_bit_cost(), 0);
        assert_eq!(ArchReg::gpr(7).prefix_bit_cost(), 0);
        assert_eq!(ArchReg::gpr(8).prefix_bit_cost(), 1);
        assert_eq!(ArchReg::gpr(15).prefix_bit_cost(), 1);
        assert_eq!(ArchReg::gpr(16).prefix_bit_cost(), 3);
        assert_eq!(ArchReg::gpr(63).prefix_bit_cost(), 3);
    }

    #[test]
    fn encoding_tiers() {
        assert_eq!(ArchReg::gpr(3).encoding_tier(), EncodingTier::Legacy);
        assert_eq!(ArchReg::gpr(12).encoding_tier(), EncodingTier::Rex);
        assert_eq!(ArchReg::gpr(40).encoding_tier(), EncodingTier::Rexbc);
    }

    #[test]
    fn availability_tracks_depth_and_simd() {
        let small = FeatureSet::minimal(); // microx86-8D-32W
        let big = FeatureSet::superset();
        assert!(ArchReg::gpr(7).available_in(&small));
        assert!(!ArchReg::gpr(8).available_in(&small));
        assert!(ArchReg::gpr(63).available_in(&big));
        assert!(!ArchReg::xmm(0).available_in(&small), "microx86 has no SSE");
        assert!(ArchReg::xmm(0).available_in(&big));

        let x86_32_8 = FeatureSet::new(
            Complexity::X86,
            RegisterWidth::W32,
            crate::RegisterDepth::D8,
            Predication::Partial,
        )
        .unwrap();
        assert!(
            ArchReg::xmm(3).available_in(&x86_32_8),
            "x86 cores carry SSE"
        );
    }

    #[test]
    fn gprs_at_depth_counts() {
        use crate::RegisterDepth::*;
        for (d, n) in [(D8, 8), (D16, 16), (D32, 32), (D64, 64)] {
            assert_eq!(ArchReg::gprs_at_depth(d).count(), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_index_out_of_range_panics() {
        let _ = ArchReg::gpr(64);
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::gpr(17).to_string(), "r17");
        assert_eq!(ArchReg::xmm(2).to_string(), "xmm2");
    }

    #[test]
    fn subregister_widths() {
        assert_eq!(SubRegister::Byte.bits(), 8);
        assert_eq!(SubRegister::Word.bits(), 16);
        assert_eq!(SubRegister::DoubleWord.bits(), 32);
        assert_eq!(SubRegister::QuadWord.bits(), 64);
    }
}
