//! # cisa-isa: the composite-ISA feature model
//!
//! This crate defines the *superset ISA* of the Composite-ISA Cores paper
//! (HPCA 2019) and everything derivable from it:
//!
//! - the five customizable feature dimensions ([`RegisterDepth`],
//!   [`RegisterWidth`], [`Complexity`], [`Predication`], and derived SIMD
//!   support),
//! - the enumeration of exactly **26** viable composite feature sets
//!   ([`FeatureSet::all`]),
//! - the upgrade/downgrade lattice between overlapping feature sets
//!   ([`FeatureSet::covers`], [`FeatureSet::downgrade_gaps`]),
//! - the machine-instruction form shared by the compiler, encoder and
//!   decoder ([`inst::MachineInst`]), its macro-op to micro-op expansion
//!   rules, and the micro-op ISA ([`uop::MicroOp`]),
//! - the variable-length superset instruction *encoding* with the paper's
//!   REXBC and predicate prefixes ([`encoding`]),
//! - behavioural models of the vendor ISAs (Thumb, Alpha, x86-64) and
//!   their x86-ized equivalents from Table II ([`vendor`]).
//!
//! # Example
//!
//! ```
//! use cisa_isa::{FeatureSet, Complexity, RegisterDepth, RegisterWidth, Predication};
//!
//! let all = FeatureSet::all();
//! assert_eq!(all.len(), 26); // the paper's 26 custom ISAs
//!
//! let superset = FeatureSet::superset();
//! assert!(all.iter().all(|fs| superset.covers(fs)));
//!
//! let thumb_like = FeatureSet::new(
//!     Complexity::MicroX86,
//!     RegisterWidth::W32,
//!     RegisterDepth::D8,
//!     Predication::Partial,
//! ).unwrap();
//! assert_eq!(thumb_like.to_string(), "microx86-8D-32W");
//! ```

#![warn(missing_docs)]

pub mod disasm;
pub mod encoding;
pub mod error;
pub mod feature_set;
pub mod inst;
pub mod regs;
pub mod riscv;
pub mod uop;
pub mod vendor;

pub use disasm::{
    disassemble, disassemble_stream, disassemble_stream_with_offsets, Disassembled, SpannedInst,
};
pub use encoding::{DecodeError, EncodeError, EncodedInst, Encoder, InstLengthDecoder};
pub use error::{IsaError, StreamError};
pub use feature_set::{
    Complexity, DowngradeGap, FeatureConstraint, FeatureSet, Predication, RegisterDepth,
    RegisterWidth, SimdSupport, ViabilityError,
};
pub use inst::{AddressingMode, MachineInst, MacroOpcode, MemLocality, Operand};
pub use regs::{ArchReg, RegClass, SubRegister};
pub use uop::{MicroOp, MicroOpKind, UopClass};
pub use vendor::{IsaModel, VendorIsa};
