//! Machine instructions (macro-ops) of the superset ISA.
//!
//! [`MachineInst`] is the common currency between the compiler back end
//! (which emits them), the encoder (which turns them into variable-length
//! bytes), the decode engine (which expands them into micro-ops) and the
//! pipeline models. The macro-op to micro-op expansion rules here are the
//! heart of the microx86-vs-x86 complexity axis: under
//! [`Complexity::MicroX86`](crate::Complexity) every legal
//! instruction expands to exactly one micro-op.

use std::fmt;

use crate::feature_set::{Complexity, FeatureSet, Predication, SimdSupport};
use crate::regs::ArchReg;
use crate::uop::{MicroOp, MicroOpKind};

/// Macro-op opcode groups of the superset ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroOpcode {
    /// Register/immediate move.
    Mov,
    /// Integer ALU operation (add/sub/logic/shift/compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Address computation without a memory access (x86 `lea`).
    Lea,
    /// Explicit load (the only mem-read form legal under microx86).
    Load,
    /// Explicit store (the only mem-write form legal under microx86).
    Store,
    /// Scalar floating-point ALU op.
    FpAlu,
    /// Scalar floating-point multiply.
    FpMul,
    /// Packed SSE2 vector op.
    VecAlu,
    /// Conditional branch.
    Branch,
    /// Unconditional jump.
    Jump,
    /// Call (pushes a return address: 2 micro-ops under x86).
    Call,
    /// Return (pops a return address: 2 micro-ops under x86).
    Ret,
    /// Conditional move — x86's partial predication.
    Cmov,
    /// No-op.
    Nop,
}

/// Memory addressing modes of the superset ISA, in increasing
/// complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressingMode {
    /// `[base]`
    BaseOnly,
    /// `[base + disp8/32]`
    BaseDisp,
    /// `[base + index*scale + disp]` — requires a SIB byte.
    BaseIndexScaleDisp,
    /// `[disp32]` absolute.
    Absolute,
}

/// Locality class of a static memory access; drives the address streams
/// the workload model generates for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLocality {
    /// Stack frame: spills, refills, saved registers — extremely hot.
    Stack,
    /// Sequential streaming over a large array.
    Stream,
    /// Working-set accesses with a benchmark-specific reuse distance.
    WorkingSet,
    /// Pointer chasing with poor locality (mcf-like).
    PointerChase,
}

/// The memory operand of a [`MachineInst`], if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOperand {
    /// Addressing mode.
    pub mode: AddressingMode,
    /// Base register (ignored for `Absolute`).
    pub base: ArchReg,
    /// Index register, for `BaseIndexScaleDisp`.
    pub index: Option<ArchReg>,
    /// Displacement size in bytes (0, 1 or 4).
    pub disp_bytes: u8,
    /// Locality class for trace generation.
    pub locality: MemLocality,
}

impl MemOperand {
    /// Simple `[base]` operand.
    pub fn base_only(base: ArchReg, locality: MemLocality) -> Self {
        MemOperand {
            mode: AddressingMode::BaseOnly,
            base,
            index: None,
            disp_bytes: 0,
            locality,
        }
    }

    /// `[base + disp]` operand with the given displacement width.
    pub fn base_disp(base: ArchReg, disp_bytes: u8, locality: MemLocality) -> Self {
        debug_assert!(matches!(disp_bytes, 1 | 4));
        MemOperand {
            mode: AddressingMode::BaseDisp,
            base,
            index: None,
            disp_bytes,
            locality,
        }
    }

    /// Full `[base + index*scale + disp]` operand.
    pub fn base_index(
        base: ArchReg,
        index: ArchReg,
        disp_bytes: u8,
        locality: MemLocality,
    ) -> Self {
        MemOperand {
            mode: AddressingMode::BaseIndexScaleDisp,
            base,
            index: Some(index),
            disp_bytes,
            locality,
        }
    }
}

/// Role of the memory operand in a compute instruction (x86 complexity
/// only — microx86 permits memory operands only on `Load`/`Store`, plus
/// `Lea`, which computes an address without accessing memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemRole {
    /// No memory operand.
    #[default]
    None,
    /// Memory operand is a source (`add reg, [mem]`): load + compute.
    Src,
    /// Memory operand is the destination (`add [mem], reg`):
    /// load + compute + store.
    Dst,
}

/// A register or immediate source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Architectural register.
    Reg(ArchReg),
    /// Immediate of the given byte width (1, 2 or 4).
    Imm(u8),
    /// Absent.
    None,
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<ArchReg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Immediate byte width, or 0.
    pub fn imm_bytes(self) -> u8 {
        match self {
            Operand::Imm(b) => b,
            _ => 0,
        }
    }
}

/// Predicate annotation on a fully predicated instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredicateAnnotation {
    /// The general-purpose register holding the predicate.
    pub reg: ArchReg,
    /// Whether the instruction executes when the predicate is *false*.
    pub negated: bool,
}

/// A macro-op of the superset ISA.
///
/// # Example
///
/// ```
/// use cisa_isa::inst::*;
/// use cisa_isa::{ArchReg, FeatureSet, Complexity};
///
/// // add r1, [r2 + 16]  — one macro-op, two micro-ops under x86.
/// let inst = MachineInst::compute(MacroOpcode::IntAlu, ArchReg::gpr(1), Operand::Reg(ArchReg::gpr(1)), Operand::None)
///     .with_mem(MemOperand::base_disp(ArchReg::gpr(2), 1, MemLocality::WorkingSet), MemRole::Src);
/// assert_eq!(inst.micro_ops().len(), 2);
/// assert!(!inst.legal_under(&FeatureSet::minimal())); // microx86 forbids mem-operand ALU
/// assert!(inst.legal_under(&FeatureSet::x86_64()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineInst {
    /// Opcode group.
    pub opcode: MacroOpcode,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// First source operand.
    pub src1: Operand,
    /// Second source operand.
    pub src2: Operand,
    /// Memory operand, if any.
    pub mem: Option<MemOperand>,
    /// Role of the memory operand.
    pub mem_role: MemRole,
    /// Whether the operation is 64-bit (needs REX.W).
    pub wide: bool,
    /// Full-predication annotation, if predicated.
    pub predicate: Option<PredicateAnnotation>,
}

impl MachineInst {
    /// A compute instruction (`dst = op(src1, src2)`), no memory operand.
    pub fn compute(opcode: MacroOpcode, dst: ArchReg, src1: Operand, src2: Operand) -> Self {
        MachineInst {
            opcode,
            dst: Some(dst),
            src1,
            src2,
            mem: None,
            mem_role: MemRole::None,
            wide: false,
            predicate: None,
        }
    }

    /// An explicit load `dst = [mem]`.
    pub fn load(dst: ArchReg, mem: MemOperand) -> Self {
        MachineInst {
            opcode: MacroOpcode::Load,
            dst: Some(dst),
            src1: Operand::None,
            src2: Operand::None,
            mem: Some(mem),
            mem_role: MemRole::Src,
            wide: false,
            predicate: None,
        }
    }

    /// An explicit store `[mem] = src`.
    pub fn store(src: ArchReg, mem: MemOperand) -> Self {
        MachineInst {
            opcode: MacroOpcode::Store,
            dst: None,
            src1: Operand::Reg(src),
            src2: Operand::None,
            mem: Some(mem),
            mem_role: MemRole::Dst,
            wide: false,
            predicate: None,
        }
    }

    /// A conditional branch (condition codes implied by a preceding
    /// compare).
    pub fn branch() -> Self {
        MachineInst {
            opcode: MacroOpcode::Branch,
            dst: None,
            src1: Operand::None,
            src2: Operand::None,
            mem: None,
            mem_role: MemRole::None,
            wide: false,
            predicate: None,
        }
    }

    /// An unconditional jump.
    pub fn jump() -> Self {
        MachineInst {
            opcode: MacroOpcode::Jump,
            ..MachineInst::branch()
        }
    }

    /// Attaches a memory operand with the given role (builder style).
    #[must_use]
    pub fn with_mem(mut self, mem: MemOperand, role: MemRole) -> Self {
        self.mem = Some(mem);
        self.mem_role = role;
        self
    }

    /// Marks the instruction as 64-bit (builder style).
    #[must_use]
    pub fn wide(mut self) -> Self {
        self.wide = true;
        self
    }

    /// Predicates the instruction on `reg` (builder style).
    #[must_use]
    pub fn predicated_on(mut self, reg: ArchReg, negated: bool) -> Self {
        self.predicate = Some(PredicateAnnotation { reg, negated });
        self
    }

    /// Whether this macro-op is legal under a feature set.
    ///
    /// microx86 forbids memory operands on compute instructions and all
    /// vector ops; full predication requires `Predication::Full`; every
    /// referenced register must be available at the feature set's depth.
    pub fn legal_under(&self, fs: &FeatureSet) -> bool {
        if fs.complexity() == Complexity::MicroX86 {
            // Lea only computes an address, so its memory operand is
            // legal everywhere; real accesses must be Load/Store.
            let mem_on_compute = self.mem.is_some()
                && !matches!(
                    self.opcode,
                    MacroOpcode::Load | MacroOpcode::Store | MacroOpcode::Lea
                );
            if mem_on_compute {
                return false;
            }
        }
        if self.opcode == MacroOpcode::VecAlu && fs.simd() != SimdSupport::Sse {
            return false;
        }
        if self.predicate.is_some() && fs.predication() != Predication::Full {
            return false;
        }
        if self.wide && fs.width() == crate::feature_set::RegisterWidth::W32 {
            return false;
        }
        self.registers().all(|r| r.available_in(fs))
    }

    /// Iterator over every architectural register the instruction
    /// references (dst, sources, base, index, predicate).
    pub fn registers(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.dst
            .into_iter()
            .chain(self.src1.reg())
            .chain(self.src2.reg())
            .chain(
                self.mem.map(|m| m.base).filter(|_| {
                    !matches!(self.mem.map(|m| m.mode), Some(AddressingMode::Absolute))
                }),
            )
            .chain(self.mem.and_then(|m| m.index))
            .chain(self.predicate.map(|p| p.reg))
    }

    /// Expands the macro-op into its micro-ops (the 1:n decode of full
    /// x86). Register slots in the produced [`MicroOp`]s use
    /// architectural GPR indices; memory micro-ops keep the macro-op's
    /// locality for trace generation.
    ///
    /// Expansion counts: plain ops 1; mem-src compute 2; mem-dst compute
    /// 3; call/ret 2; everything legal under microx86 exactly 1.
    pub fn micro_ops(&self) -> Vec<MicroOp> {
        let reg = |o: Operand| o.reg().map_or(MicroOp::NO_REG, |r| r.index());
        let dst = self.dst.map_or(MicroOp::NO_REG, |r| r.index());
        let pred = self.predicate.map(|p| p.reg.index());
        let apply_pred = |mut op: MicroOp| {
            if let Some(p) = pred {
                op = op.predicated(p);
            }
            op
        };
        let base_kind = match self.opcode {
            MacroOpcode::Mov | MacroOpcode::IntAlu | MacroOpcode::Lea | MacroOpcode::Cmov => {
                MicroOpKind::IntAlu
            }
            MacroOpcode::IntMul => MicroOpKind::IntMul,
            MacroOpcode::Load => MicroOpKind::Load,
            MacroOpcode::Store => MicroOpKind::Store,
            MacroOpcode::FpAlu => MicroOpKind::FpAlu,
            MacroOpcode::FpMul => MicroOpKind::FpMul,
            MacroOpcode::VecAlu => MicroOpKind::VecAlu,
            MacroOpcode::Branch => MicroOpKind::Branch,
            MacroOpcode::Jump => MicroOpKind::Jump,
            MacroOpcode::Call | MacroOpcode::Ret => MicroOpKind::Jump,
            MacroOpcode::Nop => MicroOpKind::Nop,
        };

        let mut uops = Vec::with_capacity(3);
        match self.opcode {
            MacroOpcode::Load => {
                uops.push(apply_pred(MicroOp::new(
                    MicroOpKind::Load,
                    dst,
                    self.mem.map_or(MicroOp::NO_REG, |m| m.base.index()),
                    self.mem
                        .and_then(|m| m.index)
                        .map_or(MicroOp::NO_REG, |r| r.index()),
                )));
            }
            MacroOpcode::Store => {
                uops.push(apply_pred(MicroOp::new(
                    MicroOpKind::Store,
                    MicroOp::NO_REG,
                    reg(self.src1),
                    self.mem.map_or(MicroOp::NO_REG, |m| m.base.index()),
                )));
            }
            MacroOpcode::Call => {
                // Push return address, then transfer.
                uops.push(MicroOp::new(
                    MicroOpKind::Store,
                    MicroOp::NO_REG,
                    MicroOp::NO_REG,
                    MicroOp::NO_REG,
                ));
                uops.push(MicroOp::bare(MicroOpKind::Jump));
            }
            MacroOpcode::Ret => {
                uops.push(MicroOp::new(
                    MicroOpKind::Load,
                    MicroOp::NO_REG,
                    MicroOp::NO_REG,
                    MicroOp::NO_REG,
                ));
                uops.push(MicroOp::bare(MicroOpKind::Jump));
            }
            MacroOpcode::Lea => {
                // Pure address arithmetic: one ALU uop over the address
                // registers, no memory micro-op.
                uops.push(apply_pred(MicroOp::new(
                    MicroOpKind::IntAlu,
                    dst,
                    self.mem.map_or(reg(self.src1), |m| m.base.index()),
                    self.mem
                        .and_then(|m| m.index)
                        .map_or(MicroOp::NO_REG, |r| r.index()),
                )));
            }
            _ => match (self.mem, self.mem_role) {
                (Some(m), MemRole::Src) => {
                    // load tmp <- [mem]; op dst <- dst_src, tmp
                    uops.push(apply_pred(MicroOp::new(
                        MicroOpKind::Load,
                        dst,
                        m.base.index(),
                        m.index.map_or(MicroOp::NO_REG, |r| r.index()),
                    )));
                    uops.push(apply_pred(MicroOp::new(
                        base_kind,
                        dst,
                        reg(self.src1),
                        dst,
                    )));
                }
                (Some(m), MemRole::Dst) => {
                    uops.push(apply_pred(MicroOp::new(
                        MicroOpKind::Load,
                        dst,
                        m.base.index(),
                        m.index.map_or(MicroOp::NO_REG, |r| r.index()),
                    )));
                    uops.push(apply_pred(MicroOp::new(
                        base_kind,
                        dst,
                        reg(self.src1),
                        dst,
                    )));
                    uops.push(apply_pred(MicroOp::new(
                        MicroOpKind::Store,
                        MicroOp::NO_REG,
                        dst,
                        m.base.index(),
                    )));
                }
                _ => {
                    uops.push(apply_pred(MicroOp::new(
                        base_kind,
                        dst,
                        reg(self.src1),
                        reg(self.src2),
                    )));
                }
            },
        }
        uops
    }

    /// Number of micro-ops this macro-op decodes into.
    pub fn uop_count(&self) -> usize {
        match self.opcode {
            MacroOpcode::Call | MacroOpcode::Ret => 2,
            MacroOpcode::Load | MacroOpcode::Store | MacroOpcode::Lea => 1,
            _ => match self.mem_role {
                MemRole::None => 1,
                MemRole::Src => 2,
                MemRole::Dst => 3,
            },
        }
    }

    /// Whether the instruction performs any memory access (directly or
    /// through its expansion).
    pub fn touches_memory(&self) -> bool {
        (self.mem.is_some() && self.opcode != MacroOpcode::Lea)
            || matches!(self.opcode, MacroOpcode::Call | MacroOpcode::Ret)
    }
}

impl fmt::Display for MachineInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.predicate {
            write!(f, "({}{}) ", if p.negated { "!" } else { "" }, p.reg)?;
        }
        write!(f, "{:?}", self.opcode)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Operand::Reg(r) = self.src1 {
            write!(f, ", {r}")?;
        }
        if let Operand::Reg(r) = self.src2 {
            write!(f, ", {r}")?;
        }
        if let Some(m) = self.mem {
            write!(f, ", [{}{:?}]", m.base, m.mode)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature_set::{RegisterDepth, RegisterWidth};

    fn r(i: u8) -> ArchReg {
        ArchReg::gpr(i)
    }

    #[test]
    fn plain_alu_is_one_uop() {
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(1),
            Operand::Reg(r(2)),
            Operand::Reg(r(3)),
        );
        assert_eq!(i.micro_ops().len(), 1);
        assert_eq!(i.uop_count(), 1);
        assert!(i.legal_under(&FeatureSet::minimal()));
    }

    #[test]
    fn mem_src_alu_is_two_uops() {
        let i = MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(1)), Operand::None)
            .with_mem(
                MemOperand::base_disp(r(2), 1, MemLocality::WorkingSet),
                MemRole::Src,
            );
        let uops = i.micro_ops();
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].kind, MicroOpKind::Load);
        assert_eq!(uops[1].kind, MicroOpKind::IntAlu);
        assert_eq!(i.uop_count(), 2);
    }

    #[test]
    fn mem_dst_alu_is_three_uops() {
        let i = MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(3)), Operand::None)
            .with_mem(
                MemOperand::base_only(r(2), MemLocality::WorkingSet),
                MemRole::Dst,
            );
        let kinds: Vec<_> = i.micro_ops().iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![MicroOpKind::Load, MicroOpKind::IntAlu, MicroOpKind::Store]
        );
    }

    #[test]
    fn call_ret_expand_to_two() {
        let call = MachineInst {
            opcode: MacroOpcode::Call,
            ..MachineInst::jump()
        };
        assert_eq!(call.micro_ops().len(), 2);
        let ret = MachineInst {
            opcode: MacroOpcode::Ret,
            ..MachineInst::jump()
        };
        assert_eq!(ret.micro_ops().len(), 2);
        assert!(call.touches_memory());
    }

    #[test]
    fn microx86_legality() {
        let minimal = FeatureSet::minimal();
        let load = MachineInst::load(r(1), MemOperand::base_only(r(2), MemLocality::Stack));
        assert!(load.legal_under(&minimal));
        let mem_alu =
            MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(1)), Operand::None)
                .with_mem(
                    MemOperand::base_only(r(2), MemLocality::Stack),
                    MemRole::Src,
                );
        assert!(!mem_alu.legal_under(&minimal));
        assert!(mem_alu.legal_under(&FeatureSet::x86_64()));
    }

    #[test]
    fn vector_needs_sse() {
        let v = MachineInst::compute(MacroOpcode::VecAlu, r(1), Operand::Reg(r(2)), Operand::None);
        assert!(!v.legal_under(&FeatureSet::minimal()));
        assert!(v.legal_under(&FeatureSet::x86_64()));
    }

    #[test]
    fn predication_needs_full_support() {
        let p = MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(2)), Operand::None)
            .predicated_on(r(5), false);
        assert!(
            !p.legal_under(&FeatureSet::x86_64()),
            "x86-64 is partial-pred"
        );
        assert!(p.legal_under(&FeatureSet::superset()));
        // The predicate register flows into every micro-op.
        assert!(p.micro_ops().iter().all(|u| u.pred == 5));
    }

    #[test]
    fn deep_registers_need_depth() {
        let fs16 = FeatureSet::x86_64(); // depth 16
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(40),
            Operand::Reg(r(2)),
            Operand::None,
        );
        assert!(!i.legal_under(&fs16));
        assert!(i.legal_under(&FeatureSet::superset()));
    }

    #[test]
    fn wide_ops_need_64bit() {
        let w32 = FeatureSet::new(
            Complexity::X86,
            RegisterWidth::W32,
            RegisterDepth::D16,
            Predication::Partial,
        )
        .unwrap();
        let i = MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(2)), Operand::None)
            .wide();
        assert!(!i.legal_under(&w32));
        assert!(i.legal_under(&FeatureSet::x86_64()));
    }

    #[test]
    fn uop_count_matches_expansion() {
        let insts = [
            MachineInst::compute(MacroOpcode::FpAlu, r(1), Operand::Reg(r(2)), Operand::None),
            MachineInst::load(r(1), MemOperand::base_only(r(2), MemLocality::Stream)),
            MachineInst::store(r(1), MemOperand::base_disp(r(2), 4, MemLocality::Stack)),
            MachineInst::branch(),
            MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(1)), Operand::None)
                .with_mem(
                    MemOperand::base_index(r(2), r(3), 4, MemLocality::Stream),
                    MemRole::Src,
                ),
        ];
        for i in insts {
            assert_eq!(i.uop_count(), i.micro_ops().len(), "{i}");
        }
    }

    #[test]
    fn lea_is_pure_address_arithmetic() {
        // Regression: Lea is documented as "address computation without a
        // memory access", but its metadata used to treat the address
        // operand as a real access (illegal under microx86, Load uop,
        // touches_memory). All three views must agree it is a single ALU
        // op that never touches memory.
        let lea = MachineInst {
            opcode: MacroOpcode::Lea,
            dst: Some(r(1)),
            src1: Operand::None,
            src2: Operand::None,
            mem: Some(MemOperand::base_index(r(2), r(3), 1, MemLocality::Stream)),
            mem_role: MemRole::Src,
            wide: false,
            predicate: None,
        };
        assert!(lea.legal_under(&FeatureSet::minimal()), "legal on microx86");
        assert!(!lea.touches_memory());
        let uops = lea.micro_ops();
        assert_eq!(uops.len(), 1);
        assert_eq!(uops[0].kind, MicroOpKind::IntAlu);
        assert_eq!(lea.uop_count(), uops.len());
        // The address registers are still architectural inputs.
        let regs: Vec<_> = lea.registers().map(|x| x.index()).collect();
        assert_eq!(regs, vec![1, 2, 3]);
    }

    #[test]
    fn registers_iterates_all_references() {
        let i = MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(2)), Operand::None)
            .with_mem(
                MemOperand::base_index(r(3), r(4), 0, MemLocality::Stream),
                MemRole::Src,
            )
            .predicated_on(r(5), true);
        let regs: Vec<_> = i.registers().map(|x| x.index()).collect();
        assert_eq!(regs, vec![1, 2, 3, 4, 5]);
    }
}
