//! A RISC-V host for the composite-ISA idea (the paper's Section II
//! discussion, implemented as an extension).
//!
//! The paper argues the technique is not x86-specific: "The RISC-V ISA
//! allows enough flexibility to carve out similar axes of customization
//! ... and thus would also be a reasonable host ISA", retaining the
//! register-depth/width/predication/addressing benefits while changing
//! the code-density story (fixed-length encodings, optional compressed
//! extension).
//!
//! This module models that alternative host: the same
//! [`FeatureSet`] lattice carried by a fixed-length
//! 4-byte encoding (with an RVC-style 2-byte compressed subset), and the
//! decode-side consequences — no instruction-length decoder, one-step
//! decoding, but wider code for the same instruction count.

use crate::feature_set::{Complexity, FeatureSet, Predication, RegisterDepth};
use crate::inst::{MachineInst, MacroOpcode, MemRole};

/// Encoding parameters of a RISC-V-style host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiscvHost {
    /// Whether the compressed (RVC-style) 2-byte subset is available.
    pub compressed: bool,
}

impl RiscvHost {
    /// The RV64GC-like host: compressed extension on.
    pub fn with_compression() -> Self {
        RiscvHost { compressed: true }
    }

    /// The plain fixed-4-byte host.
    pub fn fixed_only() -> Self {
        RiscvHost { compressed: false }
    }

    /// Whether a feature set is expressible on this host.
    ///
    /// RISC-V base encodings have 5-bit register fields, so depth 64
    /// needs a (hypothetical) extended-register prefix word; we allow it
    /// but it costs a full extra 4-byte parcel (see
    /// [`encoded_len`](Self::encoded_len)). Memory-operand compute forms
    /// (x86 complexity) do not exist: RISC-V is load-store, so full
    /// `Complexity::X86` feature sets lower every folded form back into
    /// load-compute-store when re-hosted.
    pub fn supports(&self, _fs: &FeatureSet) -> bool {
        true
    }

    /// Whether an instruction qualifies for a 2-byte compressed
    /// encoding: register-to-register ALU or short loads/stores using
    /// the 8 most popular registers, unpredicated, not wide-immediate.
    pub fn compressible(&self, inst: &MachineInst) -> bool {
        if !self.compressed || inst.predicate.is_some() {
            return false;
        }
        let low_regs = inst.registers().all(|r| r.index() < 8);
        match inst.opcode {
            MacroOpcode::IntAlu | MacroOpcode::Mov => {
                low_regs
                    && inst.src1.imm_bytes() <= 1
                    && inst.src2.imm_bytes() <= 1
                    && inst.mem.is_none()
            }
            MacroOpcode::Load | MacroOpcode::Store => {
                low_regs
                    && inst
                        .mem
                        .is_some_and(|m| m.disp_bytes <= 1 && m.index.is_none())
            }
            MacroOpcode::Jump | MacroOpcode::Ret => true,
            _ => false,
        }
    }

    /// Number of 4-byte base instructions an x86-hosted macro-op
    /// re-hosts into. Memory-operand compute forms split into
    /// load-compute(-store); everything else is one instruction.
    /// Full predication and registers beyond 31 each cost one extra
    /// prefix parcel (the host's analogue of REXBC / the predicate
    /// prefix).
    pub fn parcels(&self, inst: &MachineInst, fs: &FeatureSet) -> u32 {
        let base = match (inst.mem.is_some(), inst.opcode) {
            (true, MacroOpcode::Load | MacroOpcode::Store) => 1,
            (true, _) => match inst.mem_role {
                MemRole::Dst => 3,
                _ => 2,
            },
            (false, _) => 1,
        };
        let mut extra = 0;
        if inst.predicate.is_some() && fs.predication() == Predication::Full {
            extra += 1;
        }
        if fs.depth() == RegisterDepth::D64 && inst.registers().any(|r| r.index() >= 32) {
            extra += 1;
        }
        base + extra
    }

    /// Encoded length in bytes of one re-hosted macro-op.
    pub fn encoded_len(&self, inst: &MachineInst, fs: &FeatureSet) -> u32 {
        let parcels = self.parcels(inst, fs);
        if parcels == 1 && self.compressible(inst) {
            2
        } else {
            parcels * 4
        }
    }

    /// Code-size ratio of this host vs. the x86 host for a compiled
    /// block: `(riscv_bytes, x86_bytes)`.
    pub fn code_size_vs_x86(&self, insts: &[MachineInst], fs: &FeatureSet) -> (u64, u64) {
        let encoder = crate::Encoder::new(*fs);
        let mut rv = 0u64;
        let mut x86 = 0u64;
        for inst in insts {
            rv += self.encoded_len(inst, fs) as u64;
            x86 += encoder.encode(inst).map(|e| e.len() as u64).unwrap_or(4);
        }
        (rv, x86)
    }

    /// Decode-side savings vs. the x86 host: fixed-length parcels need
    /// no instruction-length decoder at all (the paper's Alpha/Thumb
    /// observation), so the entire ILD area/power disappears. Returns
    /// the fraction of the x86 host's ILD cost retained (0.0, or a
    /// small aligner cost when compression mixes 2- and 4-byte forms).
    pub fn ild_cost_fraction(&self) -> f64 {
        if self.compressed {
            0.18 // a 2/4-byte aligner is far simpler than the x86 ILD
        } else {
            0.0
        }
    }
}

/// Summary of re-hosting one compiled code blob onto a RISC-V host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RehostReport {
    /// Static code bytes on the RISC-V host.
    pub riscv_bytes: u64,
    /// Static code bytes on the x86 host.
    pub x86_bytes: u64,
    /// Instructions after load-store splitting.
    pub riscv_insts: u64,
    /// Macro-ops on the x86 host.
    pub x86_insts: u64,
    /// Fraction of RISC-V instructions that compressed to 2 bytes.
    pub compressed_fraction: f64,
}

impl RehostReport {
    /// Code-density ratio (RISC-V bytes per x86 byte).
    pub fn density_ratio(&self) -> f64 {
        self.riscv_bytes as f64 / self.x86_bytes.max(1) as f64
    }
}

/// Re-hosts a set of machine instructions and reports the density and
/// instruction-count consequences.
pub fn rehost(host: &RiscvHost, insts: &[MachineInst], fs: &FeatureSet) -> RehostReport {
    let (riscv_bytes, x86_bytes) = host.code_size_vs_x86(insts, fs);
    let mut riscv_insts = 0u64;
    let mut compressed = 0u64;
    for inst in insts {
        let p = host.parcels(inst, fs) as u64;
        riscv_insts += p;
        if p == 1 && host.compressible(inst) {
            compressed += 1;
        }
    }
    RehostReport {
        riscv_bytes,
        x86_bytes,
        riscv_insts,
        x86_insts: insts.len() as u64,
        compressed_fraction: compressed as f64 / riscv_insts.max(1) as f64,
    }
}

/// The complexity axis degenerates on a load-store host: report the
/// nearest expressible feature set (x86 complexity folds away).
pub fn nearest_feature_set(fs: &FeatureSet) -> FeatureSet {
    FeatureSet::new(
        Complexity::MicroX86,
        fs.width(),
        fs.depth(),
        fs.predication(),
    )
    .unwrap_or_else(|_| FeatureSet::minimal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{MemLocality, MemOperand, Operand};
    use crate::ArchReg;

    fn r(i: u8) -> ArchReg {
        ArchReg::gpr(i)
    }

    #[test]
    fn plain_alu_is_one_parcel() {
        let host = RiscvHost::fixed_only();
        let fs = FeatureSet::x86_64();
        let i = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(1),
            Operand::Reg(r(2)),
            Operand::Reg(r(3)),
        );
        assert_eq!(host.parcels(&i, &fs), 1);
        assert_eq!(host.encoded_len(&i, &fs), 4);
    }

    #[test]
    fn memory_operand_forms_split() {
        let host = RiscvHost::fixed_only();
        let fs = FeatureSet::x86_64();
        let src =
            MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(1)), Operand::None)
                .with_mem(
                    MemOperand::base_disp(r(2), 1, MemLocality::Stream),
                    MemRole::Src,
                );
        assert_eq!(host.parcels(&src, &fs), 2, "load + compute");
        let dst =
            MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(3)), Operand::None)
                .with_mem(
                    MemOperand::base_only(r(2), MemLocality::Stream),
                    MemRole::Dst,
                );
        assert_eq!(host.parcels(&dst, &fs), 3, "load + compute + store");
    }

    #[test]
    fn compression_needs_low_registers() {
        let host = RiscvHost::with_compression();
        let fs = FeatureSet::x86_64();
        let lo = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(1),
            Operand::Reg(r(2)),
            Operand::Reg(r(3)),
        );
        let hi = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(9),
            Operand::Reg(r(2)),
            Operand::Reg(r(3)),
        );
        assert!(host.compressible(&lo));
        assert!(!host.compressible(&hi));
        assert_eq!(host.encoded_len(&lo, &fs), 2);
        assert_eq!(host.encoded_len(&hi, &fs), 4);
        assert!(!RiscvHost::fixed_only().compressible(&lo));
    }

    #[test]
    fn deep_registers_cost_a_prefix_parcel() {
        let host = RiscvHost::fixed_only();
        let fs = FeatureSet::superset();
        let deep = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(40),
            Operand::Reg(r(2)),
            Operand::None,
        );
        assert_eq!(host.parcels(&deep, &fs), 2);
        let shallow = MachineInst::compute(
            MacroOpcode::IntAlu,
            r(20),
            Operand::Reg(r(2)),
            Operand::None,
        );
        assert_eq!(
            host.parcels(&shallow, &fs),
            1,
            "depth 32 fits 5-bit+1 fields"
        );
    }

    #[test]
    fn predication_costs_a_prefix_parcel() {
        let host = RiscvHost::fixed_only();
        let fs = FeatureSet::superset();
        let p = MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(2)), Operand::None)
            .predicated_on(r(5), false);
        assert_eq!(host.parcels(&p, &fs), 2);
    }

    #[test]
    fn fixed_length_hosts_drop_the_ild() {
        assert_eq!(RiscvHost::fixed_only().ild_cost_fraction(), 0.0);
        assert!(RiscvHost::with_compression().ild_cost_fraction() < 0.25);
    }

    #[test]
    fn rehost_reports_density() {
        let fs = FeatureSet::x86_64();
        let insts = vec![
            MachineInst::compute(
                MacroOpcode::IntAlu,
                r(1),
                Operand::Reg(r(2)),
                Operand::Reg(r(3)),
            ),
            MachineInst::load(r(1), MemOperand::base_disp(r(2), 1, MemLocality::Stream)),
            MachineInst::compute(MacroOpcode::IntAlu, r(1), Operand::Reg(r(1)), Operand::None)
                .with_mem(
                    MemOperand::base_disp(r(2), 1, MemLocality::Stream),
                    MemRole::Src,
                ),
        ];
        let rep = rehost(&RiscvHost::with_compression(), &insts, &fs);
        assert_eq!(rep.x86_insts, 3);
        assert_eq!(rep.riscv_insts, 4, "one folded form splits");
        assert!(rep.riscv_bytes > 0 && rep.x86_bytes > 0);
        assert!(rep.compressed_fraction > 0.0);
        assert!(rep.density_ratio() > 0.3);
    }

    #[test]
    fn nearest_feature_set_folds_complexity() {
        let near = nearest_feature_set(&FeatureSet::superset());
        assert_eq!(near.complexity(), Complexity::MicroX86);
        assert_eq!(near.depth(), FeatureSet::superset().depth());
    }
}
