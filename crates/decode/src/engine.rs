//! Functional decode-engine model: micro-op cache, decode slots, fusion.
//!
//! The micro-op cache is both a performance and a power optimization:
//! on a hit, decoded (possibly fused) micro-ops stream directly from the
//! cache and the whole decode pipeline stays off until a miss (Section
//! V-B). The cycle simulator calls [`DecodeFrontend::supply`] once per
//! fetched macro-op; the returned [`SupplySource`] tells it which
//! pipeline path (and energy event) the macro-op took, and how many
//! decode slots it consumed.

use std::fmt;

use cisa_isa::encoding::MAX_INST_LEN;
use cisa_isa::Complexity;

/// Errors the decode frontend can report for malformed fetch records.
///
/// The frontend is driven by trace records; a corrupted trace (zero
/// or over-long instruction length, zero micro-op count) must surface
/// as a value with the offending PC, not distort the activity counters
/// or crash the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The record's encoded length is 0 or exceeds the architectural
    /// maximum ([`MAX_INST_LEN`]).
    BadLength {
        /// Byte PC of the offending macro-op.
        pc: u64,
        /// The reported length.
        len: u8,
    },
    /// The record claims a macro-op decoding into zero micro-ops.
    ZeroUops {
        /// Byte PC of the offending macro-op.
        pc: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadLength { pc, len } => write!(
                f,
                "macro-op at pc {pc:#x} reports length {len} (legal: 1..={MAX_INST_LEN})"
            ),
            DecodeError::ZeroUops { pc } => {
                write!(f, "macro-op at pc {pc:#x} reports zero micro-ops")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Static description of one fetched macro-op, as the frontend sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroRecord {
    /// Byte PC.
    pub pc: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// Micro-ops this macro-op decodes into.
    pub uops: u8,
    /// Whether this op can macro-fuse with a following branch
    /// (compare-class integer op).
    pub fusible_cmp: bool,
    /// Whether this is a conditional branch (fuses with a preceding
    /// compare).
    pub is_branch: bool,
}

/// Decoder-cluster configuration (Table I's "Decoder Configurations" and
/// "Micro-op Optimizations" rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Number of simple 1:1 decoders.
    pub simple_decoders: u8,
    /// Number of complex 1:4 decoders (0 for microx86 cores, which
    /// replace it with one more simple decoder).
    pub complex_decoders: u8,
    /// Microsequencing ROM for >4-uop instructions.
    pub has_msrom: bool,
    /// Micro-op cache size in 32-byte windows (0 disables it).
    pub uop_cache_windows: u32,
    /// Micro-op cache associativity.
    pub uop_cache_ways: u32,
    /// Macro-op (cmp+branch) fusion.
    pub fusion: bool,
}

impl DecoderConfig {
    /// The decoder configuration the paper pairs with each complexity:
    /// x86 cores keep 3 simple + 1 complex + MSROM; microx86 cores
    /// replace the complex decoder with a fourth simple one and forgo
    /// the MSROM. Micro-op fusion is disabled for microx86 (each
    /// instruction decomposes into one micro-op and the fusion unit does
    /// not combine micro-ops from different macro-ops).
    pub fn for_complexity(c: Complexity) -> Self {
        match c {
            Complexity::X86 => DecoderConfig {
                simple_decoders: 3,
                complex_decoders: 1,
                has_msrom: true,
                uop_cache_windows: 256,
                uop_cache_ways: 8,
                fusion: true,
            },
            Complexity::MicroX86 => DecoderConfig {
                simple_decoders: 4,
                complex_decoders: 0,
                has_msrom: false,
                uop_cache_windows: 256,
                uop_cache_ways: 8,
                fusion: false,
            },
        }
    }

    /// Macro-ops decodable per cycle.
    pub fn decode_width(&self) -> u32 {
        (self.simple_decoders + self.complex_decoders) as u32
    }
}

/// Where a macro-op's micro-ops came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplySource {
    /// Streamed from the micro-op cache; decode pipeline off.
    UopCache,
    /// Decoded by a simple 1:1 decoder.
    SimpleDecoder,
    /// Decoded by the complex 1:4 decoder.
    ComplexDecoder,
    /// Sequenced from the MSROM (stalls the decoders).
    Msrom,
}

/// Activity counters for the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Macro-ops supplied from the micro-op cache.
    pub uop_cache_hits: u64,
    /// Macro-ops that missed the micro-op cache and paid full decode.
    pub uop_cache_misses: u64,
    /// Simple-decoder uses.
    pub simple_decodes: u64,
    /// Complex-decoder uses.
    pub complex_decodes: u64,
    /// MSROM sequences.
    pub msrom_sequences: u64,
    /// Bytes run through the instruction-length decoder.
    pub ild_bytes: u64,
    /// Macro-fused cmp+branch pairs.
    pub fused_pairs: u64,
}

impl DecodeStats {
    /// Micro-op cache hit rate.
    pub fn uop_cache_hit_rate(&self) -> f64 {
        let total = self.uop_cache_hits + self.uop_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.uop_cache_hits as f64 / total as f64
        }
    }
}

/// The window granularity of the micro-op cache (bytes of x86 code per
/// cache line, as in Solomon et al.'s micro-operation cache).
const WINDOW_BYTES: u64 = 32;

/// Set-associative micro-op cache over PC windows with LRU replacement.
#[derive(Debug, Clone)]
struct UopCache {
    /// `sets[set][way] = (tag, lru_stamp)`.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    stamp: u64,
}

impl UopCache {
    fn new(windows: u32, ways: u32) -> Option<Self> {
        if windows == 0 {
            return None;
        }
        let ways = ways.max(1) as usize;
        let n_sets = (windows as usize / ways).max(1);
        Some(UopCache {
            sets: vec![Vec::with_capacity(ways); n_sets],
            ways,
            stamp: 0,
        })
    }

    /// Looks up the window containing `pc`; fills on miss. Returns hit.
    fn access(&mut self, pc: u64) -> bool {
        let window = pc / WINDOW_BYTES;
        let idx = (window as usize) % self.sets.len();
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[idx];
        if let Some(entry) = set.iter_mut().find(|e| e.0 == window) {
            entry.1 = stamp;
            return true;
        }
        if set.len() < self.ways {
            set.push((window, stamp));
        } else if let Some(lru) = set.iter_mut().min_by_key(|e| e.1) {
            *lru = (window, stamp);
        }
        false
    }
}

/// The decode frontend: supplies micro-ops for fetched macro-ops and
/// tracks activity.
#[derive(Debug, Clone)]
pub struct DecodeFrontend {
    config: DecoderConfig,
    uop_cache: Option<UopCache>,
    stats: DecodeStats,
    /// Was the previous supplied macro-op a fusible compare (same
    /// window)?
    prev_fusible: bool,
}

impl DecodeFrontend {
    /// Creates a frontend with the given configuration.
    pub fn new(config: DecoderConfig) -> Self {
        DecodeFrontend {
            uop_cache: UopCache::new(config.uop_cache_windows, config.uop_cache_ways),
            config,
            stats: DecodeStats::default(),
            prev_fusible: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// Accumulated activity counters.
    pub fn stats(&self) -> &DecodeStats {
        &self.stats
    }

    /// Supplies one macro-op, returning its source path and the number
    /// of micro-op queue slots it occupies (after fusion).
    pub fn supply(&mut self, rec: &MacroRecord) -> (SupplySource, u8) {
        // Fusion: a branch immediately after a fusible compare shares
        // its micro-op slot.
        let fused = self.config.fusion && rec.is_branch && self.prev_fusible;
        if fused {
            self.stats.fused_pairs += 1;
        }
        self.prev_fusible = rec.fusible_cmp;

        let hit = self
            .uop_cache
            .as_mut()
            .map(|c| c.access(rec.pc))
            .unwrap_or(false);
        let slots = if fused { 0 } else { rec.uops.max(1) };
        if hit {
            self.stats.uop_cache_hits += 1;
            return (SupplySource::UopCache, slots);
        }
        self.stats.uop_cache_misses += 1;
        self.stats.ild_bytes += rec.len as u64;

        let source = if rec.uops <= 1 {
            self.stats.simple_decodes += 1;
            SupplySource::SimpleDecoder
        } else if rec.uops <= 4 && self.config.complex_decoders > 0 {
            self.stats.complex_decodes += 1;
            SupplySource::ComplexDecoder
        } else if self.config.has_msrom {
            self.stats.msrom_sequences += 1;
            SupplySource::Msrom
        } else {
            // microx86 hardware never sees multi-uop macro-ops; treat
            // defensively as serialized simple decodes.
            self.stats.simple_decodes += rec.uops as u64;
            SupplySource::SimpleDecoder
        };
        (source, slots)
    }

    /// Like [`DecodeFrontend::supply`], but validates the record first.
    ///
    /// A record with an out-of-range length or a zero micro-op count is
    /// rejected *before* it touches the micro-op cache or the activity
    /// counters, so a corrupted trace leaves the frontend state exactly
    /// as it was. Fault-injection sweeps use this entry point so a
    /// poisoned trace record surfaces as a [`DecodeError`] naming the
    /// offending PC instead of silently skewing the power model.
    pub fn supply_checked(&mut self, rec: &MacroRecord) -> Result<(SupplySource, u8), DecodeError> {
        if rec.len == 0 || rec.len as usize > MAX_INST_LEN {
            return Err(DecodeError::BadLength {
                pc: rec.pc,
                len: rec.len,
            });
        }
        if rec.uops == 0 {
            return Err(DecodeError::ZeroUops { pc: rec.pc });
        }
        Ok(self.supply(rec))
    }

    /// Supplies a batch of macro-ops in order, invoking `on_decode` for
    /// each record that missed the micro-op cache (and therefore
    /// engaged the legacy decode pipeline and the instruction fetch
    /// path). Returns the number of records supplied from the micro-op
    /// cache.
    ///
    /// Behaviour and counters are exactly those of calling
    /// [`DecodeFrontend::supply`] once per record; the batch entry
    /// point lets a measurement pass stream a whole trace without
    /// per-call dispatch and gives the caller a hook to charge
    /// instruction-side structures (e.g. L1I lookups) only on
    /// decode-path supplies.
    pub fn supply_batch<F>(&mut self, recs: &[MacroRecord], mut on_decode: F) -> u64
    where
        F: FnMut(&MacroRecord),
    {
        let mut hits = 0;
        for rec in recs {
            let (src, _) = self.supply(rec);
            if src == SupplySource::UopCache {
                hits += 1;
            } else {
                on_decode(rec);
            }
        }
        hits
    }

    /// Resets the activity counters (not the cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = DecodeStats::default();
        self.prev_fusible = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64, uops: u8) -> MacroRecord {
        MacroRecord {
            pc,
            len: 4,
            uops,
            fusible_cmp: false,
            is_branch: false,
        }
    }

    #[test]
    fn hot_loop_hits_uop_cache() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        // A tiny loop of 4 macro-ops, iterated.
        for _ in 0..100 {
            for i in 0..4 {
                fe.supply(&rec(0x1000 + i * 4, 1));
            }
        }
        assert!(fe.stats().uop_cache_hit_rate() > 0.95, "hot loop must hit");
    }

    #[test]
    fn huge_footprint_misses_uop_cache() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        // Footprint far beyond 256 windows * 32B = 8KB, one macro-op
        // per 32-byte window so there is no intra-window reuse.
        for i in 0..20_000u64 {
            fe.supply(&rec(i * 32 % (1 << 20), 1));
        }
        assert!(fe.stats().uop_cache_hit_rate() < 0.05);
    }

    #[test]
    fn complex_ops_use_complex_decoder_then_msrom() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        let (s1, n1) = fe.supply(&rec(0, 3));
        assert_eq!(s1, SupplySource::ComplexDecoder);
        assert_eq!(n1, 3);
        let (s2, _) = fe.supply(&rec(64, 6));
        assert_eq!(s2, SupplySource::Msrom);
        let (s3, _) = fe.supply(&rec(128, 1));
        assert_eq!(s3, SupplySource::SimpleDecoder);
    }

    #[test]
    fn microx86_has_no_complex_path() {
        let cfg = DecoderConfig::for_complexity(Complexity::MicroX86);
        assert_eq!(cfg.complex_decoders, 0);
        assert!(!cfg.has_msrom);
        assert_eq!(cfg.decode_width(), 4);
        let mut fe = DecodeFrontend::new(cfg);
        let (s, _) = fe.supply(&rec(0, 1));
        assert_eq!(s, SupplySource::SimpleDecoder);
    }

    #[test]
    fn fusion_elides_branch_slots() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        let cmp = MacroRecord {
            pc: 0,
            len: 3,
            uops: 1,
            fusible_cmp: true,
            is_branch: false,
        };
        let br = MacroRecord {
            pc: 3,
            len: 6,
            uops: 1,
            fusible_cmp: false,
            is_branch: true,
        };
        let (_, n_cmp) = fe.supply(&cmp);
        let (_, n_br) = fe.supply(&br);
        assert_eq!(n_cmp, 1);
        assert_eq!(n_br, 0, "fused branch takes no extra slot");
        assert_eq!(fe.stats().fused_pairs, 1);

        // microx86 never fuses.
        let mut fe2 = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::MicroX86));
        fe2.supply(&cmp);
        let (_, n2) = fe2.supply(&br);
        assert_eq!(n2, 1);
        assert_eq!(fe2.stats().fused_pairs, 0);
    }

    #[test]
    fn uop_cache_hits_skip_the_ild() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        fe.supply(&rec(0, 1));
        let bytes_after_miss = fe.stats().ild_bytes;
        fe.supply(&rec(0, 1)); // same window: hit
        assert_eq!(
            fe.stats().ild_bytes,
            bytes_after_miss,
            "hits bypass the ILD"
        );
    }

    #[test]
    fn stats_reset() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        fe.supply(&rec(0, 2));
        fe.reset_stats();
        assert_eq!(*fe.stats(), DecodeStats::default());
    }

    #[test]
    fn checked_supply_rejects_poisoned_records_without_side_effects() {
        let mut fe = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        let before = *fe.stats();

        let torn = MacroRecord {
            len: 0,
            ..rec(0x40, 1)
        };
        match fe.supply_checked(&torn) {
            Err(DecodeError::BadLength { pc: 0x40, len: 0 }) => {}
            other => panic!("expected BadLength, got {other:?}"),
        }

        let oversized = MacroRecord {
            len: (MAX_INST_LEN + 1) as u8,
            ..rec(0x80, 1)
        };
        assert!(matches!(
            fe.supply_checked(&oversized),
            Err(DecodeError::BadLength { pc: 0x80, .. })
        ));

        let hollow = rec(0xC0, 0);
        assert_eq!(
            fe.supply_checked(&hollow),
            Err(DecodeError::ZeroUops { pc: 0xC0 })
        );

        assert_eq!(*fe.stats(), before, "rejected records must not count");

        let (src, slots) = fe.supply_checked(&rec(0x100, 2)).expect("valid record");
        assert_eq!(src, SupplySource::ComplexDecoder);
        assert_eq!(slots, 2);
    }

    #[test]
    fn batch_supply_matches_per_record_supply() {
        // A stream with reuse (hits) and fresh windows (misses).
        let recs: Vec<MacroRecord> = (0..200u64)
            .map(|i| rec((i % 50) * 32, 1 + (i % 3) as u8))
            .collect();

        let mut serial = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        let mut serial_decoded = Vec::new();
        for r in &recs {
            let (src, _) = serial.supply(r);
            if src != SupplySource::UopCache {
                serial_decoded.push(r.pc);
            }
        }

        let mut batch = DecodeFrontend::new(DecoderConfig::for_complexity(Complexity::X86));
        let mut batch_decoded = Vec::new();
        let hits = batch.supply_batch(&recs, |r| batch_decoded.push(r.pc));

        assert_eq!(*batch.stats(), *serial.stats());
        assert_eq!(hits, serial.stats().uop_cache_hits);
        assert_eq!(batch_decoded, serial_decoded, "on_decode fires per miss");
    }

    #[test]
    fn decode_error_display_names_the_pc() {
        let e = DecodeError::BadLength {
            pc: 0x1234,
            len: 18,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x1234"), "{msg}");
        assert!(msg.contains("18"), "{msg}");
        let z = DecodeError::ZeroUops { pc: 0x10 }.to_string();
        assert!(z.contains("0x10"), "{z}");
    }

    #[test]
    fn zero_window_cache_disables() {
        let cfg = DecoderConfig {
            uop_cache_windows: 0,
            ..DecoderConfig::for_complexity(Complexity::X86)
        };
        let mut fe = DecodeFrontend::new(cfg);
        for _ in 0..10 {
            let (s, _) = fe.supply(&rec(0, 1));
            assert_eq!(
                s,
                SupplySource::SimpleDecoder,
                "no uop cache, always decode"
            );
        }
        assert_eq!(fe.stats().uop_cache_hits, 0);
    }
}
