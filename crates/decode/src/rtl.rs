//! Structural RTL-style area/peak-power estimation for the decoder.
//!
//! The paper synthesizes multiple x86 decoder variants with Synopsys
//! Design Compiler. We cannot run DC here, so this module models the
//! decoder as a sum of named subunits with calibrated gate budgets. The
//! structure follows Section V exactly:
//!
//! - **ILD** (Madduri-style parallel instruction-length decoder): eight
//!   decode subunits, a speculative length calculator (eight length
//!   subunits + length control select), and an instruction marker with a
//!   valid-begin unit. Superset customizations add prefix comparators to
//!   every decode subunit and widen the muxes, costing **+0.87% peak
//!   power / +0.65% area** over the x86-64 ILD.
//! - **Decoder block**: n simple 1:1 decoders, the complex 1:4 decoder,
//!   the MSROM, the macro-op queue (widened by 2 bytes for the new
//!   prefixes), the micro-op queue and micro-op cache (widened by 2
//!   bytes for the wider micro-op encodings). microx86 replaces the
//!   complex decoder with a fourth simple decoder and forgoes the MSROM:
//!   **-0.66% peak power / -1.12% area** vs. the x86-64 decoder. The
//!   superset decoder costs **+0.3% / +0.46%**.
//!
//! Budgets are in abstract gate units (area) and milliwatt units (peak
//! power); the absolute scale is set by the core-level power model in
//! `cisa-power`, which consumes the *relative* figures.

use cisa_isa::{Complexity, FeatureSet, Predication, RegisterDepth};

/// Area/power estimate of the ILD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IldRtl {
    /// Gate units.
    pub area: f64,
    /// Peak-power units.
    pub peak_power: f64,
    /// Subunit breakdown: (name, area, power).
    pub breakdown: [(&'static str, f64, f64); 4],
}

/// Area/power estimate of the decoder block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderRtl {
    /// Gate units.
    pub area: f64,
    /// Peak-power units.
    pub peak_power: f64,
    /// Simple decoders instantiated.
    pub simple_decoders: u8,
    /// Complex decoders instantiated.
    pub complex_decoders: u8,
    /// MSROM present.
    pub has_msrom: bool,
}

// --- ILD subunit budgets (x86-64 baseline) ---
const ILD_DECODE_SUBUNIT_AREA: f64 = 9_500.0; // x8
const ILD_LENGTH_SUBUNIT_AREA: f64 = 1_800.0; // x8
const ILD_LENGTH_CONTROL_AREA: f64 = 4_000.0;
const ILD_MARKER_AREA: f64 = 5_600.0;
const ILD_DECODE_SUBUNIT_POWER: f64 = 10.4; // x8
const ILD_LENGTH_SUBUNIT_POWER: f64 = 1.5; // x8
const ILD_LENGTH_CONTROL_POWER: f64 = 2.8;
const ILD_MARKER_POWER: f64 = 2.0;

// Superset additions per decode subunit: two prefix comparators (REXBC
// marker 0xd6, predicate marker 0xf1) and the extra decode signals.
const ILD_PREFIX_COMPARATOR_AREA: f64 = 25.0; // x2 x8
const ILD_PREFIX_COMPARATOR_POWER: f64 = 0.03; // x2 x8
                                               // Wider multiplexers in the length subunits, control select, valid
                                               // begin unit.
const ILD_MUX_WIDENING_AREA: f64 = 250.0;
const ILD_MUX_WIDENING_POWER: f64 = 0.39;

const ILD_BASE_AREA: f64 = 8.0 * ILD_DECODE_SUBUNIT_AREA
    + 8.0 * ILD_LENGTH_SUBUNIT_AREA
    + ILD_LENGTH_CONTROL_AREA
    + ILD_MARKER_AREA;
const ILD_BASE_POWER: f64 = 8.0 * ILD_DECODE_SUBUNIT_POWER
    + 8.0 * ILD_LENGTH_SUBUNIT_POWER
    + ILD_LENGTH_CONTROL_POWER
    + ILD_MARKER_POWER;

/// ILD estimate for a feature set. Fixed-length vendor ISAs have no ILD
/// at all; the superset prefixes add comparator/mux logic.
pub fn ild(fs: &FeatureSet) -> IldRtl {
    let needs_custom_prefixes =
        fs.depth() > RegisterDepth::D16 || fs.predication() == Predication::Full;
    let (extra_area, extra_power) = if needs_custom_prefixes {
        (
            16.0 * ILD_PREFIX_COMPARATOR_AREA + ILD_MUX_WIDENING_AREA,
            16.0 * ILD_PREFIX_COMPARATOR_POWER + ILD_MUX_WIDENING_POWER,
        )
    } else {
        (0.0, 0.0)
    };
    IldRtl {
        area: ILD_BASE_AREA + extra_area,
        peak_power: ILD_BASE_POWER + extra_power,
        breakdown: [
            (
                "decode subunits",
                8.0 * ILD_DECODE_SUBUNIT_AREA + extra_area * 0.6,
                8.0 * ILD_DECODE_SUBUNIT_POWER + extra_power * 0.6,
            ),
            (
                "length calculator",
                8.0 * ILD_LENGTH_SUBUNIT_AREA + ILD_LENGTH_CONTROL_AREA + extra_area * 0.3,
                8.0 * ILD_LENGTH_SUBUNIT_POWER + ILD_LENGTH_CONTROL_POWER + extra_power * 0.3,
            ),
            (
                "instruction marker",
                ILD_MARKER_AREA + extra_area * 0.1,
                ILD_MARKER_POWER + extra_power * 0.1,
            ),
            (
                "total",
                ILD_BASE_AREA + extra_area,
                ILD_BASE_POWER + extra_power,
            ),
        ],
    }
}

// --- decoder block budgets (x86-64 baseline; full block = decode
// engine + macro-op queue + micro-op queue + micro-op cache) ---
// Engine: 3 simple + 1 complex + MSROM. The microx86 swap (4th simple,
// no complex, no MSROM) must land at -1.12% area / -0.66% power of the
// *full block*, while being 15.1% area / 9.8% power of the engine alone
// (the paper's Section III "excluding 1:n instructions" bound).
const SIMPLE_DECODER_AREA: f64 = 15_744.0;
const COMPLEX_DECODER_AREA: f64 = 20_000.0;
const MSROM_AREA: f64 = 6_944.0;
const SIMPLE_DECODER_POWER: f64 = 15.18;
const COMPLEX_DECODER_POWER: f64 = 18.0;
const MSROM_POWER: f64 = 3.78;
// Queues and the micro-op cache (per byte of width).
const MACRO_QUEUE_AREA_PER_BYTE: f64 = 6_250.0; // 16B baseline
const UOP_STRUCTS_AREA: f64 = 1_000_000.0
    - (3.0 * SIMPLE_DECODER_AREA + COMPLEX_DECODER_AREA + MSROM_AREA)
    - 16.0 * MACRO_QUEUE_AREA_PER_BYTE;
const MACRO_QUEUE_POWER_PER_BYTE: f64 = 6.25;
const UOP_STRUCTS_POWER: f64 = 1_000.0
    - (3.0 * SIMPLE_DECODER_POWER + COMPLEX_DECODER_POWER + MSROM_POWER)
    - 16.0 * MACRO_QUEUE_POWER_PER_BYTE;
// Superset widening: +2B macro-op queue, wider micro-op encodings, and
// predicate routing, totalling +0.46% area / +0.30% power.
const SUPERSET_UOP_WIDENING_AREA: f64 = 4_600.0;
const SUPERSET_UOP_WIDENING_POWER: f64 = 3.0;

/// Decoder-block estimate for a feature set.
pub fn decoder_block(fs: &FeatureSet) -> DecoderRtl {
    let (simple, complex, msrom) = match fs.complexity() {
        Complexity::X86 => (3u8, 1u8, true),
        Complexity::MicroX86 => (4u8, 0u8, false),
    };
    let mut area = simple as f64 * SIMPLE_DECODER_AREA
        + complex as f64 * COMPLEX_DECODER_AREA
        + if msrom { MSROM_AREA } else { 0.0 }
        + 16.0 * MACRO_QUEUE_AREA_PER_BYTE
        + UOP_STRUCTS_AREA;
    let mut power = simple as f64 * SIMPLE_DECODER_POWER
        + complex as f64 * COMPLEX_DECODER_POWER
        + if msrom { MSROM_POWER } else { 0.0 }
        + 16.0 * MACRO_QUEUE_POWER_PER_BYTE
        + UOP_STRUCTS_POWER;
    let needs_custom = fs.depth() > RegisterDepth::D16 || fs.predication() == Predication::Full;
    if needs_custom {
        area += SUPERSET_UOP_WIDENING_AREA;
        power += SUPERSET_UOP_WIDENING_POWER;
    }
    DecoderRtl {
        area,
        peak_power: power,
        simple_decoders: simple,
        complex_decoders: complex,
        has_msrom: msrom,
    }
}

/// Relative area/power of a feature set's decoder vs. the x86-64
/// baseline decoder: `(power_ratio, area_ratio)`.
pub fn decoder_deltas(fs: &FeatureSet) -> (f64, f64) {
    let base = decoder_block(&FeatureSet::x86_64());
    let d = decoder_block(fs);
    (d.peak_power / base.peak_power, d.area / base.area)
}

/// The Section III bound: savings of the decode *engine* from excluding
/// every instruction that decodes into more than one micro-op
/// (complex decoder + MSROM replaced by one simple decoder), as
/// `(power_saving_fraction, area_saving_fraction)`.
pub fn single_uop_engine_savings() -> (f64, f64) {
    let engine_area = 3.0 * SIMPLE_DECODER_AREA + COMPLEX_DECODER_AREA + MSROM_AREA;
    let engine_power = 3.0 * SIMPLE_DECODER_POWER + COMPLEX_DECODER_POWER + MSROM_POWER;
    let saved_area = COMPLEX_DECODER_AREA + MSROM_AREA - SIMPLE_DECODER_AREA;
    let saved_power = COMPLEX_DECODER_POWER + MSROM_POWER - SIMPLE_DECODER_POWER;
    (saved_power / engine_power, saved_area / engine_area)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(x: f64) -> f64 {
        (x - 1.0) * 100.0
    }

    #[test]
    fn superset_decoder_costs_match_paper() {
        // Paper: +0.3% peak power, +0.46% area vs the x86-64 decoder.
        let (p, a) = decoder_deltas(&FeatureSet::superset());
        assert!((pct(p) - 0.30).abs() < 0.05, "power delta {}%", pct(p));
        assert!((pct(a) - 0.46).abs() < 0.05, "area delta {}%", pct(a));
    }

    #[test]
    fn microx86_decoder_savings_match_paper() {
        // Paper: -0.66% peak power, -1.12% area vs the x86-64 decoder.
        let fs = "microx86-16D-32W".parse().expect("valid feature-set name");
        let (p, a) = decoder_deltas(&fs);
        assert!((pct(p) + 0.66).abs() < 0.05, "power delta {}%", pct(p));
        assert!((pct(a) + 1.12).abs() < 0.05, "area delta {}%", pct(a));
    }

    #[test]
    fn ild_customization_costs_match_paper() {
        // Paper: +0.87% total peak power, +0.65% area for the superset
        // ILD modifications.
        let base = ild(&FeatureSet::x86_64());
        let sup = ild(&FeatureSet::superset());
        let dp = (sup.peak_power / base.peak_power - 1.0) * 100.0;
        let da = (sup.area / base.area - 1.0) * 100.0;
        assert!((dp - 0.87).abs() < 0.06, "ILD power delta {dp}%");
        assert!((da - 0.65).abs() < 0.06, "ILD area delta {da}%");
    }

    #[test]
    fn single_uop_engine_savings_match_section_3() {
        // Paper: up to 9.8% peak power and 15.1% area saved by
        // excluding 1:n instructions from the decode engine.
        let (p, a) = single_uop_engine_savings();
        assert!((p * 100.0 - 9.8).abs() < 0.3, "power saving {}%", p * 100.0);
        assert!((a * 100.0 - 15.1).abs() < 0.3, "area saving {}%", a * 100.0);
    }

    #[test]
    fn depth_32_alone_triggers_prefix_logic() {
        let fs: FeatureSet = "x86-32D-64W".parse().expect("valid feature-set name");
        let base = ild(&FeatureSet::x86_64());
        assert!(ild(&fs).area > base.area, "REXBC prefixes need ILD support");
        let partial16: FeatureSet = "x86-16D-64W".parse().expect("valid feature-set name");
        assert_eq!(ild(&partial16).area, base.area);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let i = ild(&FeatureSet::superset());
        let (_, a, p) = i.breakdown[3];
        assert!((a - i.area).abs() < 1e-6);
        assert!((p - i.peak_power).abs() < 1e-6);
        let parts_a: f64 = i.breakdown[..3].iter().map(|x| x.1).sum();
        assert!((parts_a - i.area).abs() < 1.0);
    }

    #[test]
    fn microx86_instantiates_four_simple_decoders() {
        let d = decoder_block(&"microx86-8D-32W".parse().expect("valid feature-set name"));
        assert_eq!(d.simple_decoders, 4);
        assert_eq!(d.complex_decoders, 0);
        assert!(!d.has_msrom);
        let x = decoder_block(&FeatureSet::x86_64());
        assert_eq!(
            (x.simple_decoders, x.complex_decoders, x.has_msrom),
            (3, 1, true)
        );
    }
}
