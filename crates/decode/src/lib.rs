//! # cisa-decode: the two-phase x86 decode engine model
//!
//! Models the fetch/decode engine of Section V (Figure 4): the parallel
//! instruction-length decoder, the decoder cluster (n simple 1:1
//! decoders, one complex 1:4 decoder, the microsequencing ROM), the
//! micro-op cache and micro-op fusion.
//!
//! Two halves:
//!
//! - [`engine`] — the *functional* model the cycle simulator drives: a
//!   set-associative micro-op cache over PC windows, per-cycle decode
//!   slot accounting, and macro-op fusion, producing the activity counts
//!   the power model consumes.
//! - [`rtl`] — the *structural* area/power model standing in for the
//!   paper's Synopsys DC synthesis: named subunits with calibrated gate
//!   budgets, reproducing the paper's deltas (superset decoder +0.3%
//!   peak power / +0.46% area; microx86-32 decoder -0.66% / -1.12%; ILD
//!   +0.87% / +0.65%).

#![warn(missing_docs)]

pub mod engine;
pub mod rtl;

pub use engine::{
    DecodeError, DecodeFrontend, DecodeStats, DecoderConfig, MacroRecord, SupplySource,
};
pub use rtl::{decoder_block, ild, DecoderRtl, IldRtl};
