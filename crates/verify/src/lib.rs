//! # cisa-verify: the full staged verification suite
//!
//! The compiler-side passes (IR/CFG well-formedness, predication
//! legality, post-isel operand shape, post-regalloc register discipline,
//! encoding round-trip) live in [`cisa_compiler::verify`] so the driver
//! can run them after every phase. This crate adds the one pass that
//! cannot live there without a dependency cycle — **migration safety**
//! — and composes all six into a workload-suite pre-flight:
//!
//! - [`verify_migration`] checks that every feature gap
//!   [`FeatureSet::downgrade_gaps`] claims emulable really is: after
//!   [`cisa_migrate::emulate`], no instruction still exercises the
//!   downgraded dimension (rules in [`MIGRATION_RULES`]).
//! - [`verify_phase`] compiles one workload phase for one feature set
//!   with [`VerifyLevel::Full`] and then checks emulation against every
//!   migration target.
//! - [`verify_suite`] sweeps phases × feature sets and aggregates a
//!   [`VerifyReport`]; the `verify_all` binary runs it over all 49
//!   workload phases × 26 feature sets and exits nonzero on any
//!   diagnostic (the CI `verify` job).
//!
//! Every rule here and in [`cisa_compiler::verify::RULES`] has a
//! dedicated firing test in `tests/mutation_rules.rs`.

pub use cisa_compiler::verify::{VerifyError, VerifyLevel, VerifyPass};

use cisa_compiler::{compile, CompileError, CompileOptions, CompiledCode};
use cisa_isa::inst::MacroOpcode;
use cisa_isa::{Complexity, FeatureSet, Predication, RegisterWidth, SimdSupport};
use cisa_migrate::{emulate, EmulationStats, MigrateError};
use cisa_workloads::{generate, PhaseSpec};

/// Rules of the migration-safety pass. Together with the five
/// per-dimension survival rules, [`check_emulation`] covers exactly the
/// dimensions of [`cisa_isa::MachineInst::legal_under`].
pub const MIGRATION_RULES: &[&str] = &[
    "predicate-survived-downgrade",
    "vector-op-survived-downgrade",
    "wide-op-survived-downgrade",
    "mem-op-survived-downgrade",
    "deep-register-survived-downgrade",
    "emulation-failed",
];

fn merr(
    function: &str,
    block: Option<usize>,
    inst_index: Option<usize>,
    rule: &'static str,
    detail: String,
) -> VerifyError {
    VerifyError {
        pass: VerifyPass::Migration,
        function: function.to_string(),
        block,
        inst_index,
        rule,
        detail,
    }
}

/// Checks one emulation outcome against the target feature set.
///
/// The emulated code must be runnable on a core implementing only
/// `target`: no surviving predicate prefixes, vector ops, wide ops,
/// memory operands on compute instructions, or registers beyond the
/// target depth. Checks are legality-only — emulation keeps the
/// original block byte sizes as an approximation, so encoding-level
/// checks do not apply here.
///
/// Takes the [`emulate`] `Result` rather than calling it, so corrupted
/// outcomes can be verified directly.
pub fn check_emulation(
    result: Result<(CompiledCode, EmulationStats), MigrateError>,
    target: &FeatureSet,
    function: &str,
) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let (code, _stats) = match result {
        Ok(r) => r,
        Err(e) => {
            errors.push(merr(
                function,
                None,
                None,
                "emulation-failed",
                format!("downgrade to {target} failed: {e}"),
            ));
            return errors;
        }
    };
    let depth = target.depth().count();
    for (bi, b) in code.blocks.iter().enumerate() {
        if b.vectorized && target.simd() != SimdSupport::Sse {
            errors.push(merr(
                function,
                Some(bi),
                None,
                "vector-op-survived-downgrade",
                format!("block still marked vectorized after downgrade to {target}"),
            ));
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            if inst.predicate.is_some() && target.predication() != Predication::Full {
                errors.push(merr(
                    function,
                    Some(bi),
                    Some(ii),
                    "predicate-survived-downgrade",
                    format!("{inst} keeps a predicate prefix on {target}"),
                ));
            }
            if inst.opcode == MacroOpcode::VecAlu && target.simd() != SimdSupport::Sse {
                errors.push(merr(
                    function,
                    Some(bi),
                    Some(ii),
                    "vector-op-survived-downgrade",
                    format!("{inst} is a vector op but {target} has no SIMD"),
                ));
            }
            if inst.wide && target.width() == RegisterWidth::W32 {
                errors.push(merr(
                    function,
                    Some(bi),
                    Some(ii),
                    "wide-op-survived-downgrade",
                    format!("{inst} is still 64-bit wide on 32-bit {target}"),
                ));
            }
            let mem_on_compute = inst.mem.is_some()
                && !matches!(
                    inst.opcode,
                    MacroOpcode::Load | MacroOpcode::Store | MacroOpcode::Lea
                );
            if mem_on_compute && target.complexity() == Complexity::MicroX86 {
                errors.push(merr(
                    function,
                    Some(bi),
                    Some(ii),
                    "mem-op-survived-downgrade",
                    format!("{inst} keeps a memory operand on microx86 {target}"),
                ));
            }
            for r in inst.registers() {
                if r.index() as u32 >= depth {
                    errors.push(merr(
                        function,
                        Some(bi),
                        Some(ii),
                        "deep-register-survived-downgrade",
                        format!("{inst} references {r} beyond {target}'s depth {depth}"),
                    ));
                }
            }
        }
    }
    errors
}

/// Migration-safety pass: emulates `code` down to every `target` and
/// checks each outcome with [`check_emulation`]. Targets that cover the
/// code's feature set exercise the zero-transform upgrade path and must
/// verify trivially.
pub fn verify_migration(code: &CompiledCode, targets: &[FeatureSet]) -> Vec<VerifyError> {
    targets
        .iter()
        .flat_map(|t| check_emulation(emulate(code, t), t, &code.name))
        .collect()
}

/// Runs the full six-pass suite for one workload phase and one feature
/// set: a [`VerifyLevel::Full`] compile (passes 1–5 after each pipeline
/// phase) followed by migration safety against `targets`.
pub fn verify_phase(spec: &PhaseSpec, fs: &FeatureSet, targets: &[FeatureSet]) -> Vec<VerifyError> {
    let func = generate(spec);
    let options = CompileOptions {
        verify: VerifyLevel::Full,
        ..Default::default()
    };
    match compile(&func, fs, &options) {
        Ok(code) => verify_migration(&code, targets),
        Err(CompileError::Verify(violations)) => violations,
        Err(CompileError::InvalidIr(msg)) => {
            // validate() checks a subset of verify_ir's structural
            // rules, so the precise diagnostics are recoverable.
            let mut v = cisa_compiler::verify::verify_ir(&func);
            if v.is_empty() {
                v.push(VerifyError {
                    pass: VerifyPass::Ir,
                    function: func.name.clone(),
                    block: None,
                    inst_index: None,
                    rule: "empty-function",
                    detail: msg,
                });
            }
            v
        }
    }
}

/// The aggregate outcome of a suite pre-flight.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Workload phases checked.
    pub phases: usize,
    /// Feature sets each phase was compiled for.
    pub feature_sets: usize,
    /// (compiled-for, migration-target) pairs emulated and checked.
    pub migration_pairs: usize,
    /// Every diagnostic found, in phase × feature-set order.
    pub errors: Vec<VerifyError>,
}

impl VerifyReport {
    /// Whether the whole suite verified clean.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Verifies every phase × feature-set combination, using the same
/// feature sets as migration targets. The `verify_all` binary (and the
/// CI `verify` job) runs this over all phases and all 26 feature sets.
pub fn verify_suite(phases: &[PhaseSpec], feature_sets: &[FeatureSet]) -> VerifyReport {
    let mut report = VerifyReport {
        phases: phases.len(),
        feature_sets: feature_sets.len(),
        ..Default::default()
    };
    for spec in phases {
        for fs in feature_sets {
            report.migration_pairs += feature_sets.len();
            report.errors.extend(verify_phase(spec, fs, feature_sets));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisa_workloads::all_phases;

    #[test]
    fn one_phase_verifies_clean_across_all_feature_sets() {
        let phases = all_phases();
        let all = FeatureSet::all();
        let report = verify_suite(&phases[..1], &all);
        assert_eq!(report.phases, 1);
        assert_eq!(report.feature_sets, 26);
        assert_eq!(report.migration_pairs, 26 * 26);
        assert!(report.ok(), "diagnostics: {:#?}", report.errors);
    }

    #[test]
    fn upgrade_targets_verify_trivially() {
        let spec = &all_phases()[0];
        let func = generate(spec);
        let code = compile(&func, &FeatureSet::minimal(), &CompileOptions::default())
            .expect("minimal compile");
        // Every set covers code compiled for the minimal one... except
        // along dimensions the partial order leaves incomparable; all
        // must still verify.
        assert_eq!(verify_migration(&code, &FeatureSet::all()), vec![]);
    }

    #[test]
    fn migration_rules_are_unique_and_disjoint_from_compiler_rules() {
        let mut seen = std::collections::HashSet::new();
        for r in MIGRATION_RULES {
            assert!(seen.insert(r), "duplicate migration rule {r}");
            assert!(
                !cisa_compiler::verify::RULES.contains(r),
                "{r} collides with a compiler rule"
            );
        }
    }
}
