//! Suite pre-flight: verifies every workload phase × every feature set
//! through the full six-pass ladder (staged compile verification plus
//! migration safety against all 26 targets), in parallel over phases.
//!
//! Exit status 0 iff zero diagnostics. `CISA_THREADS` bounds the worker
//! count (default: available parallelism). The CI `verify` job runs
//! this in release; EXPERIMENTS.md records the expected runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cisa_isa::FeatureSet;
use cisa_verify::{verify_phase, VerifyError};
use cisa_workloads::all_phases;

fn threads() -> usize {
    std::env::var("CISA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn main() {
    let start = Instant::now();
    let phases = all_phases();
    let feature_sets = FeatureSet::all();
    let next = AtomicUsize::new(0);
    let workers = threads().min(phases.len().max(1));

    let mut errors: Vec<VerifyError> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = phases.get(i) else { break };
                        for fs in &feature_sets {
                            local.extend(verify_phase(spec, fs, &feature_sets));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            errors.extend(h.join().expect("verifier worker panicked"));
        }
    });

    let pairs = phases.len() * feature_sets.len();
    println!(
        "verified {} phases x {} feature sets ({} compiles, {} migration pairs) in {:.1?}",
        phases.len(),
        feature_sets.len(),
        pairs,
        pairs * feature_sets.len(),
        start.elapsed()
    );
    if errors.is_empty() {
        println!("OK: zero violations");
        return;
    }
    eprintln!("{} violation(s):", errors.len());
    for e in &errors {
        eprintln!("  {e}");
    }
    std::process::exit(1);
}
