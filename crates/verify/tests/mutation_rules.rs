//! Seeded mutation tests: every verifier rule must fire.
//!
//! Each scenario starts from a clean artifact (IR, selected code,
//! allocated code, compiled code, or an emulation outcome), breaks
//! exactly one invariant, and asserts the *exact* rule that diagnoses
//! it. `mutation_table_covers_every_rule` then proves the table spans
//! [`RULES`] ∪ [`MIGRATION_RULES`], so no rule can be added without a
//! firing test.

use cisa_compiler::ir::{
    AddrExpr, BlockId, IrBlock, IrFunction, IrInst, IrOp, Terminator, VReg, VectorizableHint,
};
use cisa_compiler::isel::select;
use cisa_compiler::regalloc::allocate;
use cisa_compiler::verify::{
    verify_encoding, verify_ir, verify_isel, verify_predication, verify_regalloc,
    verify_stream_roundtrip, VerifyError, RULES,
};
use cisa_compiler::{compile, CompileOptions, CompiledCode};
use cisa_isa::inst::{MemOperand, MemRole};
use cisa_isa::{ArchReg, Encoder, FeatureSet, MachineInst, MacroOpcode, MemLocality, Operand};
use cisa_migrate::{EmulationStats, MigrateError};
use cisa_verify::{check_emulation, MIGRATION_RULES};

fn full() -> FeatureSet {
    FeatureSet::superset()
}

fn partial() -> FeatureSet {
    FeatureSet::x86_64()
}

fn micro() -> FeatureSet {
    "microx86-16D-32W".parse().expect("valid feature set")
}

/// A clean scalar base: load, constant, add — one block, one implicit
/// pointer parameter.
fn base_ir() -> IrFunction {
    let mut f = IrFunction::new("mutant");
    let p = f.new_vreg();
    let x = f.new_vreg();
    let y = f.new_vreg();
    let mut b = IrBlock::new(Terminator::Ret, 10.0);
    b.insts
        .push(IrInst::load(x, AddrExpr::base(p), MemLocality::WorkingSet));
    b.insts.push(IrInst::constant(y, 3));
    b.insts.push(IrInst::compute(IrOp::IntAlu, y, x, y));
    f.add_block(b);
    f
}

/// The base with its block marked vectorizable (4 lanes).
fn vec_ir() -> IrFunction {
    let mut f = base_ir();
    f.blocks[0].vectorizable = Some(VectorizableHint { lanes: 4 });
    f
}

/// The base with the add marked 64-bit wide.
fn wide_ir() -> IrFunction {
    let mut f = base_ir();
    f.blocks[0].insts[2].wide = true;
    f
}

fn base_code(fs: &FeatureSet) -> CompiledCode {
    compile(&base_ir(), fs, &CompileOptions::default()).expect("clean base compiles")
}

fn spill_slot() -> MemOperand {
    MemOperand::base_disp(ArchReg::gpr(4), 1, MemLocality::Stack)
}

fn plain_minst() -> MachineInst {
    MachineInst::compute(
        MacroOpcode::IntAlu,
        ArchReg::gpr(0),
        Operand::Reg(ArchReg::gpr(1)),
        Operand::Reg(ArchReg::gpr(2)),
    )
}

/// One mutation per rule: (rule, diagnostics it produces).
fn scenarios() -> Vec<(&'static str, Vec<VerifyError>)> {
    let mut table: Vec<(&'static str, Vec<VerifyError>)> = Vec::new();

    // ---- verify_ir ----
    table.push(("empty-function", verify_ir(&IrFunction::new("hollow"))));
    table.push(("terminator-target-out-of-range", {
        let mut f = base_ir();
        f.blocks[0].term = Terminator::Jump(BlockId(7));
        verify_ir(&f)
    }));
    table.push(("operand-out-of-range", {
        let mut f = base_ir();
        let y = VReg(2);
        f.blocks[0]
            .insts
            .push(IrInst::compute(IrOp::IntAlu, y, VReg(99), y));
        verify_ir(&f)
    }));
    table.push(("negative-block-weight", {
        let mut f = base_ir();
        f.blocks[0].weight = -1.0;
        verify_ir(&f)
    }));
    table.push(("mem-op-missing-addr", {
        let mut f = base_ir();
        f.blocks[0].insts[0].addr = None;
        verify_ir(&f)
    }));
    table.push(("no-reachable-ret", {
        let mut f = base_ir();
        f.blocks[0].term = Terminator::Jump(BlockId(0));
        verify_ir(&f)
    }));
    table.push(("use-before-def", {
        let mut f = IrFunction::new("early");
        let x = f.new_vreg();
        let y = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        // y is read here but its only definition comes later.
        b.insts.push(IrInst::compute(IrOp::IntAlu, x, y, y));
        b.insts.push(IrInst::compute(IrOp::IntAlu, y, x, x));
        f.add_block(b);
        verify_ir(&f)
    }));
    table.push(("double-def", {
        let mut f = base_ir();
        let y = VReg(2);
        // Second unpredicated def of y with no intervening use.
        f.blocks[0].insts.push(IrInst::constant(y, 1));
        verify_ir(&f)
    }));
    table.push(("unreachable-weighted-block", {
        let mut f = base_ir();
        f.add_block(IrBlock::new(Terminator::Ret, 5.0));
        verify_ir(&f)
    }));

    // ---- verify_predication ----
    table.push(("predicated-op-under-partial-predication", {
        let mut f = base_ir();
        f.blocks[0].insts[2].pred = Some((VReg(1), false));
        verify_predication(&f, &partial())
    }));
    table.push(("predicated-def-of-own-guard", {
        let mut f = base_ir();
        // The add defines y while being guarded by y.
        f.blocks[0].insts[2].pred = Some((VReg(2), false));
        verify_predication(&f, &full())
    }));
    table.push(("predicate-guard-redefined-in-run", {
        let mut f = base_ir();
        let z = f.new_vreg();
        // y's most recent def (the constant) becomes predicated, then y
        // guards a later instruction.
        f.blocks[0].insts[1].pred = Some((VReg(1), false));
        f.blocks[0].insts[2] = IrInst::compute(IrOp::IntAlu, z, VReg(1), VReg(1));
        f.blocks[0].insts[2].pred = Some((VReg(2), false));
        verify_predication(&f, &full())
    }));

    // ---- verify_isel ----
    table.push(("vreg-out-of-range", {
        let mut v = select(&base_ir(), &partial());
        v.vreg_count = 1;
        verify_isel(&v, &partial())
    }));
    table.push(("control-opcode-in-block", {
        let mut v = select(&base_ir(), &partial());
        v.blocks[0].insts[0].opcode = MacroOpcode::Jump;
        verify_isel(&v, &partial())
    }));
    table.push(("load-store-shape", {
        // microx86 selection keeps the explicit load (x86 folds it).
        let mut v = select(&base_ir(), &micro());
        let i = v.blocks[0]
            .insts
            .iter()
            .position(|i| i.opcode == MacroOpcode::Load)
            .expect("microx86 keeps the load");
        v.blocks[0].insts[i].dst = None;
        verify_isel(&v, &micro())
    }));
    table.push(("mem-role-inconsistent", {
        let mut v = select(&base_ir(), &micro());
        // A register-register compute given a memory role without a
        // memory operand.
        let inst = v.blocks[0]
            .insts
            .iter_mut()
            .find(|i| i.opcode == MacroOpcode::IntAlu && i.mem.is_none())
            .expect("reg-reg alu");
        inst.mem_role = MemRole::Src;
        verify_isel(&v, &micro())
    }));
    table.push(("unsplit-mem-op-under-microx86", {
        let mut v = select(&base_ir(), &micro());
        // Re-fold the load into the compute: illegal on microx86.
        let mem = v.blocks[0]
            .insts
            .iter()
            .find(|i| i.opcode == MacroOpcode::Load)
            .and_then(|i| i.mem)
            .expect("load has mem");
        let inst = v.blocks[0]
            .insts
            .iter_mut()
            .find(|i| i.opcode == MacroOpcode::IntAlu)
            .expect("alu inst");
        inst.mem = Some(mem);
        inst.mem_role = MemRole::Src;
        verify_isel(&v, &micro())
    }));
    table.push(("vector-op-without-simd", {
        let v = select(&vec_ir(), &"x86-16D-32W".parse().expect("valid"));
        assert!(v.blocks[0]
            .insts
            .iter()
            .any(|i| i.opcode == MacroOpcode::VecAlu));
        verify_isel(&v, &micro())
    }));
    table.push(("vector-op-outside-vectorized-block", {
        let fs: FeatureSet = "x86-16D-32W".parse().expect("valid");
        let mut v = select(&vec_ir(), &fs);
        v.blocks[0].vectorized = false;
        verify_isel(&v, &fs)
    }));
    table.push(("wide-op-on-32bit-target", {
        let v = select(&wide_ir(), &partial());
        verify_isel(&v, &"x86-16D-32W".parse().expect("valid"))
    }));
    table.push(("predicate-under-partial-predication", {
        let mut v = select(&base_ir(), &partial());
        v.blocks[0].insts[0].pred = Some((VReg(1), false));
        verify_isel(&v, &partial())
    }));

    // ---- verify_regalloc ----
    table.push(("register-beyond-depth", {
        let mut a = allocate(&select(&base_ir(), &partial()), &partial());
        a.blocks[0].insts[0].dst = Some(ArchReg::gpr(40));
        verify_regalloc(&a, &partial())
    }));
    table.push(("overlapping-intervals-share-register", {
        let mut a = allocate(&select(&base_ir(), &partial()), &partial());
        let iv = *a
            .intervals
            .iter()
            .find(|i| i.reg.is_some())
            .expect("some interval got a register");
        a.intervals.push(iv);
        verify_regalloc(&a, &partial())
    }));
    table.push(("spill-slot-shape", {
        let mut a = allocate(&select(&base_ir(), &partial()), &partial());
        // A stack-pointer access with a 4-byte displacement and the
        // wrong locality class.
        a.blocks[0].insts.push(MachineInst::load(
            ArchReg::gpr(0),
            MemOperand::base_disp(ArchReg::gpr(4), 4, MemLocality::Stream),
        ));
        verify_regalloc(&a, &partial())
    }));
    table.push(("spill-store-unpaired", {
        let mut a = allocate(&select(&base_ir(), &partial()), &partial());
        // A spill store at block entry saves nothing just computed.
        a.blocks[0]
            .insts
            .insert(0, MachineInst::store(ArchReg::gpr(0), spill_slot()));
        verify_regalloc(&a, &partial())
    }));
    table.push(("refill-load-unused", {
        let mut a = allocate(&select(&base_ir(), &partial()), &partial());
        // A refill at block end that nothing ever reads.
        a.blocks[0]
            .insts
            .push(MachineInst::load(ArchReg::gpr(0), spill_slot()));
        verify_regalloc(&a, &partial())
    }));
    table.push(("regalloc-stats-mismatch", {
        let mut a = allocate(&select(&base_ir(), &partial()), &partial());
        a.stats.dyn_spill_stores += 100.0;
        verify_regalloc(&a, &partial())
    }));

    // ---- verify_encoding ----
    table.push(("illegal-instruction-for-feature-set", {
        let mut code = base_code(&partial());
        code.blocks[0].insts[0].dst = Some(ArchReg::gpr(40));
        verify_encoding(&code)
    }));
    table.push(("encode-failed", {
        // Decodes fine (the length decoder is feature-set-agnostic) but
        // cannot be re-encoded under a partial-predication target.
        let inst = plain_minst().predicated_on(ArchReg::gpr(3), false);
        let bytes = Encoder::new(full())
            .encode(&inst)
            .expect("legal under superset");
        verify_stream_roundtrip(&partial(), &[inst], &bytes.bytes, "m", None)
    }));
    table.push(("stream-decode-error", {
        let inst = plain_minst();
        let enc = Encoder::new(partial()).encode(&inst).expect("legal");
        let truncated = &enc.bytes[..enc.bytes.len() - 1];
        verify_stream_roundtrip(&partial(), &[inst], truncated, "m", None)
    }));
    table.push(("stream-roundtrip-mismatch", {
        let inst = plain_minst();
        let bytes = Encoder::new(partial())
            .encode_stream(&[inst, inst])
            .expect("legal");
        verify_stream_roundtrip(&partial(), &[inst], &bytes, "m", None)
    }));
    table.push(("block-bytes-mismatch", {
        let mut code = base_code(&partial());
        code.blocks[0].code_bytes += 1;
        verify_encoding(&code)
    }));
    table.push(("stats-code-bytes-mismatch", {
        let mut code = base_code(&partial());
        code.stats.code_bytes += 7;
        verify_encoding(&code)
    }));

    // ---- migration safety ----
    table.push(("predicate-survived-downgrade", {
        let mut code = base_code(&full());
        code.blocks[0]
            .insts
            .push(plain_minst().predicated_on(ArchReg::gpr(3), false));
        check_emulation(Ok((code, EmulationStats::default())), &partial(), "m")
    }));
    table.push(("vector-op-survived-downgrade", {
        let mut code = base_code(&partial());
        code.blocks[0].vectorized = true;
        check_emulation(Ok((code, EmulationStats::default())), &micro(), "m")
    }));
    table.push(("wide-op-survived-downgrade", {
        let mut code = base_code(&partial());
        let mut inst = plain_minst();
        inst.wide = true;
        code.blocks[0].insts.push(inst);
        let target: FeatureSet = "x86-16D-32W".parse().expect("valid");
        check_emulation(Ok((code, EmulationStats::default())), &target, "m")
    }));
    table.push(("mem-op-survived-downgrade", {
        let mut code = base_code(&partial());
        let mut inst = plain_minst();
        inst.mem = Some(MemOperand::base_disp(
            ArchReg::gpr(1),
            1,
            MemLocality::WorkingSet,
        ));
        inst.mem_role = MemRole::Src;
        code.blocks[0].insts.push(inst);
        check_emulation(Ok((code, EmulationStats::default())), &micro(), "m")
    }));
    table.push(("deep-register-survived-downgrade", {
        let mut code = base_code(&full());
        let mut inst = plain_minst();
        inst.dst = Some(ArchReg::gpr(40));
        code.blocks[0].insts.push(inst);
        check_emulation(Ok((code, EmulationStats::default())), &partial(), "m")
    }));
    table.push(("emulation-failed", {
        check_emulation(
            Err(MigrateError::Emulation {
                block: 0,
                index: 0,
                reason: "corrupted in flight",
            }),
            &partial(),
            "m",
        )
    }));

    table
}

#[test]
fn clean_baselines_have_no_violations() {
    // Mutation tests are only meaningful if the unmutated artifacts
    // verify clean.
    assert_eq!(verify_ir(&base_ir()), vec![]);
    assert_eq!(verify_ir(&vec_ir()), vec![]);
    assert_eq!(verify_ir(&wide_ir()), vec![]);
    for fs in [full(), partial(), micro()] {
        let v = select(&base_ir(), &fs);
        assert_eq!(verify_isel(&v, &fs), vec![], "{fs}");
        assert_eq!(verify_regalloc(&allocate(&v, &fs), &fs), vec![], "{fs}");
        assert_eq!(verify_encoding(&base_code(&fs)), vec![], "{fs}");
    }
}

#[test]
fn every_mutation_fires_its_exact_rule() {
    for (rule, errors) in scenarios() {
        assert!(
            errors.iter().any(|e| e.rule == rule),
            "mutation for `{rule}` fired {:?} instead",
            errors.iter().map(|e| e.rule).collect::<Vec<_>>()
        );
    }
}

#[test]
fn mutations_never_fire_rules_outside_the_registries() {
    for (rule, errors) in scenarios() {
        for e in &errors {
            assert!(
                RULES.contains(&e.rule) || MIGRATION_RULES.contains(&e.rule),
                "mutation for `{rule}` fired unregistered rule `{}`",
                e.rule
            );
        }
    }
}

#[test]
fn mutation_table_covers_every_rule() {
    let covered: std::collections::HashSet<&str> =
        scenarios().iter().map(|(rule, _)| *rule).collect();
    for rule in RULES.iter().chain(MIGRATION_RULES) {
        assert!(covered.contains(rule), "no mutation fires `{rule}`");
    }
    for rule in &covered {
        assert!(
            RULES.contains(rule) || MIGRATION_RULES.contains(rule),
            "mutation table names unknown rule `{rule}`"
        );
    }
}
