//! Offline drop-in replacement for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the deterministic PRNG machinery it needs as a path
//! dependency that shadows the real crate. The API mirrors `rand` 0.8
//! exactly for the calls that appear in this repository:
//!
//! - [`rngs::SmallRng`] — the small fast PRNG (xoshiro256++, the same
//!   algorithm `rand` 0.8 uses on 64-bit targets)
//! - [`SeedableRng::seed_from_u64`] — SplitMix64 state expansion
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//!
//! Everything is deterministic: there is no OS entropy source, which is
//! a feature — every consumer in this workspace seeds explicitly so
//! results are reproducible across machines and thread counts.

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard"
/// distribution (mirror of `rand`'s `Standard`): floats in `[0, 1)`,
/// integers over their full range, and fair booleans.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 significant bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts (mirror of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's unbiased-enough widening multiply; the tiny
                // modulo bias of plain multiply-shift is irrelevant for
                // simulation workloads but we keep the value in-range
                // exactly.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (e - s) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                s + v as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i64 + v as i64) as $t
            }
        }
    )*};
}
range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as StandardSample>::sample(rng)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The small fast generator: **xoshiro256++** (Blackman & Vigna),
    /// the same algorithm `rand` 0.8's `SmallRng` uses on 64-bit
    /// platforms. Not cryptographically secure; excellent statistical
    /// quality for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(seed: u64) -> Self {
            // SplitMix64 state expansion (Vigna's recommended seeding).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Raw xoshiro256++ from the all-ones-ish state used by the
        // reference implementation: states {1, 2, 3, 4}.
        let mut r = SmallRng::seed_from_u64(0);
        // Determinism: same seed, same stream.
        let a: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SmallRng::seed_from_u64(0);
        let b: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(a, b);
        // Different seeds diverge immediately.
        let mut r3 = SmallRng::seed_from_u64(1);
        assert_ne!(a[0], r3.next_u64());
    }

    use super::RngCore;

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = r.gen_range(0..1usize);
            assert_eq!(y, 0);
            let z = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(13);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues {trues}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((500..1_500).contains(&hits), "hits {hits}");
    }
}
