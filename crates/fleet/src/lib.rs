//! # cisa-fleet: fleet-scale migration scheduler simulation
//!
//! The paper evaluates composite-ISA scheduling and migration on
//! 4-core snapshots (Figures 13/15). This crate extends that to a
//! *datacenter*: a deterministic discrete-event simulation of
//! thousands of composite-ISA chips (drawn from the multicore search)
//! serving millions of thread-lifetimes that arrive as a seeded
//! open-system stream, with an online scheduler that places and
//! live-migrates threads under per-chip power caps.
//!
//! The moving parts, one module each:
//!
//! - [`chips`] — the fleet's hardware: distinct core designs extracted
//!   from the batched [`cisa_explore::PerfTable`] (per-phase
//!   cycles/energy columns via `PerfTable::design_column`), grouped
//!   into 4-core chip designs found by
//!   [`cisa_explore::multicore::search`] under explicit power budgets,
//!   replicated across the fleet.
//! - [`workload`] — the open-system arrival stream: seeded exponential
//!   interarrivals; each thread-lifetime carries a phase-profile
//!   fingerprint sampled from the 49-phase corpus or a synthetic blend
//!   of two corpus phases, plus a run of work segments.
//! - [`migration`] — migration pricing: a dense per-phase class tensor
//!   built from [`cisa_migrate::classify_migration_with`] over
//!   statically-proven [`cisa_migrate::MigrationPointMap`]s (the
//!   `cisa-analyze` pipeline), and the three Mavrogeorgis-grounded
//!   latency constants for native / transforming / state-transforming
//!   migrations.
//! - [`policy`] — the [`policy::SchedulerPolicy`] trait and the three
//!   shipped policies: static-random (baseline), affinity-greedy, and
//!   migration-aware (segment EDP inclusive of amortized migration
//!   cost).
//! - [`sim`] — the discrete-event engine: the fleet is sharded into
//!   independent clusters, each simulated serially; shards fan out on
//!   a [`cisa_explore::SweepRunner`], so a full fleet run is
//!   **bit-identical at any `CISA_THREADS`**.
//! - [`report`] — per-policy throughput / EDP / tail-slowdown metrics
//!   and the deterministic JSON report `fleet_bench` writes to
//!   `BENCH_fleet.json`.
//!
//! The full subsystem reference — event model, arrival process,
//! power-cap accounting, policy scoring functions, the migration
//! cost-class table and its grounding — lives in the repository-level
//! `FLEET.md`. The `fleet/*` observability names are catalogued in
//! `METRICS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chips;
pub mod migration;
pub mod policy;
pub mod report;
pub mod sim;
pub mod workload;

pub use chips::{ChipDesign, CoreDesign, FleetSpec};
pub use migration::{class_latency_cycles, MigrationMatrix};
pub use policy::{AffinityGreedy, MigrationAware, SchedulerPolicy, StaticRandom};
pub use report::{FleetReport, PolicyReport};
pub use sim::{run_policies, simulate_fleet, simulate_shard, FleetConfig, ShardStats};
pub use workload::{ArrivalParams, ArrivalStream, ThreadSpec, Workload};
