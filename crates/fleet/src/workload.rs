//! The open-system arrival stream: seeded thread-lifetimes with
//! phase-profile fingerprints.
//!
//! The fleet is an *open* system — threads arrive from outside at a
//! seeded exponential rate, run to completion, and leave — rather than
//! the closed 4-thread steps of the multicore evaluator. Each
//! thread-lifetime carries a [`Workload`]: either one of the corpus'
//! 49 phase fingerprints, or a synthetic blend of two corpus phases
//! (datacenter threads rarely match a SimPoint region exactly), plus a
//! run of work segments. Segment boundaries are the scheduler's
//! migration opportunities — the analogue of the paper's SimPoint
//! phase boundaries at fleet scale.
//!
//! Everything is derived from `SmallRng` streams seeded per shard, so
//! the arrival process is a pure function of `(seed, shard)` and the
//! simulation stays bit-identical at any worker count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The phase-profile fingerprint of one thread: a corpus phase, or a
/// synthetic blend of two corpus phases.
///
/// A blend models a thread whose behaviour sits between two measured
/// SimPoint regions: its cycles/energy per unit of work are the
/// `alpha`-weighted average of the component phases' table entries, so
/// a blended workload never leaves the convex hull of measured
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Primary corpus phase row.
    pub p1: u16,
    /// Secondary corpus phase row (`== p1` for a pure workload).
    pub p2: u16,
    /// Weight of `p1` in `0.0..=1.0` (`1.0` for a pure workload).
    pub alpha: f64,
}

impl Workload {
    /// A pure corpus-phase workload.
    pub fn pure(phase: u16) -> Self {
        Workload {
            p1: phase,
            p2: phase,
            alpha: 1.0,
        }
    }

    /// Whether this is a pure corpus phase (no synthetic blending).
    pub fn is_pure(&self) -> bool {
        self.p1 == self.p2 || self.alpha >= 1.0
    }

    /// `alpha`-weighted blend of a per-phase quantity.
    #[inline]
    pub fn blend(&self, v1: f64, v2: f64) -> f64 {
        self.alpha * v1 + (1.0 - self.alpha) * v2
    }
}

/// One thread-lifetime: arrival instant, fingerprint, and its run of
/// work segments (units of table work per segment).
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSpec {
    /// Fleet-unique thread id (dense within a shard).
    pub id: u64,
    /// Arrival time in fleet cycles.
    pub arrival_cycles: f64,
    /// Phase-profile fingerprint.
    pub workload: Workload,
    /// Work units per segment; the thread completes when every segment
    /// has executed. Segment boundaries are migration opportunities.
    pub segments: Vec<f64>,
}

impl ThreadSpec {
    /// Total demanded work units over all segments.
    pub fn total_work(&self) -> f64 {
        self.segments.iter().sum()
    }
}

/// Parameters of the arrival process (shared by every shard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalParams {
    /// Base RNG seed; each shard derives a private stream from it.
    pub seed: u64,
    /// Corpus phase-row count to sample fingerprints from.
    pub n_phases: u16,
    /// Fraction of threads carrying a synthetic two-phase blend.
    pub mix_fraction: f64,
    /// Segments per thread are uniform in `1..=max_segments`.
    pub max_segments: u32,
    /// Minimum per-segment work (units); log-uniform up to `work_max`.
    pub work_min: f64,
    /// Maximum per-segment work (units).
    pub work_max: f64,
}

impl ArrivalParams {
    /// Mean segments per thread under the uniform segment-count draw.
    pub fn mean_segments(&self) -> f64 {
        (1.0 + self.max_segments as f64) / 2.0
    }

    /// Mean work per segment under the log-uniform draw.
    pub fn mean_segment_work(&self) -> f64 {
        if self.work_max <= self.work_min {
            return self.work_min;
        }
        (self.work_max - self.work_min) / (self.work_max / self.work_min).ln()
    }

    /// Mean work per thread-lifetime.
    pub fn mean_thread_work(&self) -> f64 {
        self.mean_segments() * self.mean_segment_work()
    }
}

/// A shard-private lazy stream of [`ThreadSpec`]s: `count` arrivals
/// with exponential interarrival times at `rate` threads per cycle.
///
/// The stream is an iterator so a shard never materializes its million
/// thread-specs up front; each spec is drawn on demand from the
/// shard's private RNG.
#[derive(Debug)]
pub struct ArrivalStream {
    params: ArrivalParams,
    rng: SmallRng,
    next_time: f64,
    rate: f64,
    next_id: u64,
    id_stride: u64,
    remaining: u64,
}

impl ArrivalStream {
    /// A shard's arrival stream: `count` threads at `rate` threads per
    /// cycle. Thread ids start at `first_id` and advance by
    /// `id_stride`, so round-robin shard ownership yields globally
    /// unique ids. The RNG stream is private to `(params.seed, shard)`.
    pub fn new(
        params: ArrivalParams,
        shard: u64,
        first_id: u64,
        id_stride: u64,
        count: u64,
        rate: f64,
    ) -> Self {
        let seed = params
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(shard.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x000F_1EE7);
        ArrivalStream {
            params,
            rng: SmallRng::seed_from_u64(seed),
            next_time: 0.0,
            rate,
            next_id: first_id,
            id_stride: id_stride.max(1),
            remaining: count,
        }
    }

    /// Draws an exponential interarrival gap in cycles.
    fn gap(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // -ln(1-u)/rate; u < 1 so the argument is positive.
        -(1.0 - u).ln() / self.rate
    }

    /// Samples a fingerprint: pure corpus phase or two-phase blend.
    fn sample_workload(&mut self) -> Workload {
        let n = self.params.n_phases;
        let mix: f64 = self.rng.gen_range(0.0..1.0);
        let p1 = self.rng.gen_range(0..n);
        if mix < self.params.mix_fraction && n > 1 {
            let mut p2 = self.rng.gen_range(0..n - 1);
            if p2 >= p1 {
                p2 += 1;
            }
            let alpha = self.rng.gen_range(0.15..0.85);
            Workload { p1, p2, alpha }
        } else {
            Workload::pure(p1)
        }
    }

    /// Draws one log-uniform segment work amount.
    fn sample_work(&mut self) -> f64 {
        let lo = self.params.work_min.max(1e-9);
        let hi = self.params.work_max.max(lo);
        if hi <= lo {
            return lo;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    }
}

impl Iterator for ArrivalStream {
    type Item = ThreadSpec;

    fn next(&mut self) -> Option<ThreadSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.next_time += self.gap();
        let workload = self.sample_workload();
        let n_segs = self.rng.gen_range(1..=self.params.max_segments.max(1));
        let segments = (0..n_segs).map(|_| self.sample_work()).collect();
        let spec = ThreadSpec {
            id: self.next_id,
            arrival_cycles: self.next_time,
            workload,
            segments,
        };
        self.next_id = self.next_id.wrapping_add(self.id_stride);
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ArrivalParams {
        ArrivalParams {
            seed: 7,
            n_phases: 49,
            mix_fraction: 0.3,
            max_segments: 4,
            work_min: 50.0,
            work_max: 500.0,
        }
    }

    #[test]
    fn stream_is_deterministic_per_shard() {
        let a: Vec<_> = ArrivalStream::new(params(), 3, 3, 8, 100, 1e-4).collect();
        let b: Vec<_> = ArrivalStream::new(params(), 3, 3, 8, 100, 1e-4).collect();
        assert_eq!(a, b);
        let c: Vec<_> = ArrivalStream::new(params(), 4, 4, 8, 100, 1e-4).collect();
        assert_ne!(a, c, "different shards draw different streams");
    }

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let mut last = 0.0;
        for t in ArrivalStream::new(params(), 0, 0, 1, 500, 1e-4) {
            assert!(t.arrival_cycles > last);
            last = t.arrival_cycles;
            assert!(!t.segments.is_empty() && t.segments.len() <= 4);
            for &w in &t.segments {
                assert!((50.0..=500.0).contains(&w));
            }
            assert!(t.workload.alpha > 0.0 && t.workload.alpha <= 1.0);
            assert!(t.workload.p1 < 49 && t.workload.p2 < 49);
        }
    }

    #[test]
    fn mix_fraction_is_roughly_honored() {
        let mixed = ArrivalStream::new(params(), 1, 1, 8, 2000, 1e-4)
            .filter(|t| !t.workload.is_pure())
            .count();
        let frac = mixed as f64 / 2000.0;
        assert!((0.2..0.4).contains(&frac), "mixed fraction {frac}");
    }

    #[test]
    fn mean_work_matches_log_uniform_formula() {
        let p = params();
        let n = 20_000;
        let total: f64 = ArrivalStream::new(p, 2, 2, 8, n, 1e-4)
            .map(|t| t.total_work())
            .sum();
        let mean = total / n as f64;
        let expect = p.mean_thread_work();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }
}
