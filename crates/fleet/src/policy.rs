//! Scheduler policies: how a thread picks (or is pinned to) a core.
//!
//! The event loop builds a [`Candidate`] per idle, power-feasible core
//! whenever a thread needs a core, and asks the policy to choose. The
//! three shipped policies bracket the design space the paper's
//! Figures 13/15 explore, at fleet scale:
//!
//! - [`StaticRandom`] — the no-affinity baseline: each thread is
//!   pinned at arrival to one uniformly-random core (among cores that
//!   could ever run it under the chip cap) and never migrates.
//! - [`AffinityGreedy`] — pick the fastest feasible core for the
//!   thread's fingerprint, every segment; migration costs are ignored.
//! - [`MigrationAware`] — pick the core minimizing the remaining
//!   work's energy-delay product *inclusive* of the migration's class
//!   latency and energy, so a migration happens exactly when its
//!   amortized EDP delta is negative.
//!
//! Policies are pure functions of the candidate list (plus, for the
//! static baseline, a seeded per-thread RNG), so every policy keeps
//! the simulation deterministic.

use cisa_migrate::MigrationClass;
use cisa_power::CLOCK_HZ;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::migration::MIGRATION_POWER_FRACTION;

/// One placement option: an idle, power-feasible core.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Global core index.
    pub core: u32,
    /// Core-design index in the fleet spec.
    pub design: u16,
    /// Peak power (W) of the core.
    pub peak_w: f64,
    /// Cycles per unit of the thread's workload on this core.
    pub cpu: f64,
    /// Energy (J) per unit of the thread's workload on this core.
    pub epu: f64,
    /// Migration class if moving here migrates the thread; `None` for
    /// the thread's first dispatch or for resuming on the same core.
    pub mig_class: Option<MigrationClass>,
    /// Migration latency in cycles (`0.0` when `mig_class` is `None`).
    pub mig_cycles: f64,
}

/// Per-decision context the policy sees alongside the candidates.
#[derive(Debug, Clone, Copy)]
pub struct PlacementCtx {
    /// Work units left across all remaining segments (including the
    /// one about to run).
    pub remaining_work: f64,
    /// Core the thread is statically bound to, if its policy bound one
    /// at arrival.
    pub bound_core: Option<u32>,
}

/// A scheduling policy: optional arrival-time binding plus the
/// per-segment core choice.
pub trait SchedulerPolicy: Sync {
    /// Stable policy name used in reports and JSON.
    fn name(&self) -> &'static str;

    /// Called once at thread arrival with every core that could ever
    /// run the thread alone under its chip's cap. A static policy
    /// returns the core to pin the thread to; dynamic policies return
    /// `None`.
    fn bind_on_arrival(&self, _rng: &mut SmallRng, _eligible: &[u32]) -> Option<u32> {
        None
    }

    /// Chooses among the idle feasible cores, or `None` to keep the
    /// thread queued until the next scheduling opportunity.
    fn choose(&self, ctx: &PlacementCtx, candidates: &[Candidate]) -> Option<usize>;
}

/// The no-affinity baseline: pin each arriving thread to one
/// uniformly-random eligible core; never migrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticRandom;

impl SchedulerPolicy for StaticRandom {
    fn name(&self) -> &'static str {
        "static-random"
    }

    fn bind_on_arrival(&self, rng: &mut SmallRng, eligible: &[u32]) -> Option<u32> {
        if eligible.is_empty() {
            return None;
        }
        Some(eligible[rng.gen_range(0..eligible.len())])
    }

    fn choose(&self, ctx: &PlacementCtx, candidates: &[Candidate]) -> Option<usize> {
        let bound = ctx.bound_core?;
        candidates.iter().position(|c| c.core == bound)
    }
}

/// Greedy affinity: the fastest feasible core for the fingerprint,
/// chosen fresh at every segment boundary; migration costs ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct AffinityGreedy;

impl SchedulerPolicy for AffinityGreedy {
    fn name(&self) -> &'static str {
        "affinity-greedy"
    }

    fn choose(&self, _ctx: &PlacementCtx, candidates: &[Candidate]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if best.is_none_or(|(_, b)| c.cpu < b) {
                best = Some((i, c.cpu));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Migration-aware EDP: choose the candidate minimizing the remaining
/// work's energy x delay inclusive of the migration's latency and
/// energy. A migration is taken exactly when its EDP gain over
/// staying put survives the amortized migration cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationAware;

impl MigrationAware {
    /// The scoring function: remaining-work EDP inclusive of the
    /// migration cost. Exposed for FLEET.md's worked example.
    pub fn score(ctx: &PlacementCtx, c: &Candidate) -> f64 {
        let delay = ctx.remaining_work * c.cpu + c.mig_cycles;
        let mig_energy = c.mig_cycles / CLOCK_HZ * MIGRATION_POWER_FRACTION * c.peak_w;
        let energy = ctx.remaining_work * c.epu + mig_energy;
        energy * delay
    }
}

impl SchedulerPolicy for MigrationAware {
    fn name(&self) -> &'static str {
        "migration-aware"
    }

    fn choose(&self, ctx: &PlacementCtx, candidates: &[Candidate]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let s = Self::score(ctx, c);
            if best.is_none_or(|(_, b)| s < b) {
                best = Some((i, s));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cand(core: u32, cpu: f64, mig_cycles: f64) -> Candidate {
        Candidate {
            core,
            design: 0,
            peak_w: 10.0,
            cpu,
            epu: 1e-9,
            mig_class: (mig_cycles > 0.0).then_some(MigrationClass::Native),
            mig_cycles,
        }
    }

    #[test]
    fn static_random_only_takes_its_bound_core() {
        let p = StaticRandom;
        let mut rng = SmallRng::seed_from_u64(1);
        let bound = p.bind_on_arrival(&mut rng, &[3, 5, 9]).expect("bound");
        assert!([3, 5, 9].contains(&bound));
        let ctx = PlacementCtx {
            remaining_work: 10.0,
            bound_core: Some(5),
        };
        let cands = [cand(4, 1.0, 0.0), cand(5, 2.0, 0.0)];
        assert_eq!(p.choose(&ctx, &cands), Some(1));
        let cands = [cand(4, 1.0, 0.0)];
        assert_eq!(p.choose(&ctx, &cands), None, "waits for its core");
    }

    #[test]
    fn affinity_greedy_picks_fastest_ignoring_migration() {
        let p = AffinityGreedy;
        let ctx = PlacementCtx {
            remaining_work: 10.0,
            bound_core: None,
        };
        let cands = [cand(0, 2.0, 0.0), cand(1, 1.0, 1e9)];
        assert_eq!(p.choose(&ctx, &cands), Some(1), "migration cost ignored");
    }

    #[test]
    fn migration_aware_declines_unamortizable_migrations() {
        let p = MigrationAware;
        let ctx = PlacementCtx {
            remaining_work: 100.0,
            bound_core: None,
        };
        // Staying costs 100*2.0 = 200 cycles; moving to the 1.5x-faster
        // core costs 100*1.33 + 1e9 — never worth it.
        let cands = [cand(0, 2.0, 0.0), cand(1, 1.33, 1e9)];
        assert_eq!(p.choose(&ctx, &cands), Some(0));
        // With a cheap migration the faster core wins.
        let cands = [cand(0, 2.0, 0.0), cand(1, 1.33, 10.0)];
        assert_eq!(p.choose(&ctx, &cands), Some(1));
    }

    #[test]
    fn ties_break_to_the_first_candidate() {
        let p = AffinityGreedy;
        let ctx = PlacementCtx {
            remaining_work: 1.0,
            bound_core: None,
        };
        let cands = [cand(7, 1.0, 0.0), cand(8, 1.0, 0.0)];
        assert_eq!(p.choose(&ctx, &cands), Some(0));
    }
}
