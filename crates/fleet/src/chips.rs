//! The fleet's hardware: core designs, chip designs, and the fleet
//! roster.
//!
//! A fleet is built from a handful of *chip designs* — 4-core
//! composite-ISA chips found by [`cisa_explore::multicore::search`]
//! under explicit peak-power budgets — replicated across thousands of
//! sockets. Each distinct core design appearing anywhere in the fleet
//! is extracted **once** into a [`CoreDesign`] carrying its full
//! per-phase cycles/energy column ([`PerfTable::design_column`]), so
//! the event loop scores placements with two array reads per
//! candidate instead of table lookups.
//!
//! Chips run under a per-chip power cap that is *below* the sum of
//! their cores' peak powers (a TDP, as on real parts): the scheduler
//! may only start a thread on a core when the chip's active peak power
//! plus the candidate core's stays under the cap.

use cisa_explore::multicore::{search, Budget, CoreChoice, Evaluator, Objective, SearchConfig};
use cisa_explore::{DesignId, DesignSpace, PerfTable, PhasePerf};

use crate::workload::Workload;

/// One distinct core design used somewhere in the fleet.
#[derive(Debug, Clone)]
pub struct CoreDesign {
    /// The design point in the 26x180 space.
    pub id: DesignId,
    /// Peak power (W) — the chip-cap accounting unit.
    pub peak_w: f64,
    /// Full per-phase performance column: `perf[p]` is the table entry
    /// for corpus phase row `p` on this design.
    pub perf: Vec<PhasePerf>,
}

impl CoreDesign {
    /// Cycles per unit of work for a (possibly blended) workload.
    #[inline]
    pub fn cpu(&self, w: &Workload) -> f64 {
        w.blend(
            self.perf[w.p1 as usize].cycles_per_unit,
            self.perf[w.p2 as usize].cycles_per_unit,
        )
    }

    /// Energy (J) per unit of work for a (possibly blended) workload.
    #[inline]
    pub fn epu(&self, w: &Workload) -> f64 {
        w.blend(
            self.perf[w.p1 as usize].energy_per_unit,
            self.perf[w.p2 as usize].energy_per_unit,
        )
    }
}

/// One 4-core chip design: core-design indices plus the runtime power
/// cap.
#[derive(Debug, Clone)]
pub struct ChipDesign {
    /// Short label for reports (e.g. `tp-20w`).
    pub label: String,
    /// Indices into [`FleetSpec::core_designs`], one per core slot.
    pub cores: [u16; 4],
    /// Runtime power cap (W): the sum of simultaneously active cores'
    /// peak powers must stay at or under this.
    pub cap_w: f64,
}

/// The fleet roster: distinct core designs, chip designs, and the
/// per-socket chip-design assignment.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Distinct core designs (deduplicated across chip designs).
    pub core_designs: Vec<CoreDesign>,
    /// Distinct chip designs.
    pub chip_designs: Vec<ChipDesign>,
    /// Chip-design index of each physical chip in the fleet.
    pub chips: Vec<u16>,
    /// Corpus phase-row count of the perf columns.
    pub n_phases: usize,
}

/// Fraction of the search's power budget granted as the runtime chip
/// cap. Real parts set TDP below the sum of per-core peaks — not every
/// core can run flat-out simultaneously — so the fleet cap is
/// deliberately tighter than the budget the chips were designed under,
/// which is what makes power-aware placement a real constraint.
pub const TDP_FACTOR: f64 = 0.85;

impl FleetSpec {
    /// Builds a roster from explicit 4-core chips: `(cores, cap_w,
    /// label)` per chip design, replicated round-robin over `n_chips`
    /// sockets. Duplicate core design points are extracted once.
    pub fn from_chips(
        table: &PerfTable,
        space: &DesignSpace,
        designs: &[([DesignId; 4], f64, String)],
        n_chips: usize,
    ) -> FleetSpec {
        assert!(!designs.is_empty(), "fleet needs at least one chip design");
        let mut core_designs: Vec<CoreDesign> = Vec::new();
        let mut chip_designs = Vec::with_capacity(designs.len());
        for (ids, cap_w, label) in designs {
            let mut cores = [0u16; 4];
            for (slot, id) in ids.iter().enumerate() {
                let at = core_designs.iter().position(|c| c.id == *id);
                let at = match at {
                    Some(i) => i,
                    None => {
                        core_designs.push(CoreDesign {
                            id: *id,
                            peak_w: space.budget(*id).1,
                            perf: table.design_column(*id),
                        });
                        core_designs.len() - 1
                    }
                };
                cores[slot] = at as u16;
            }
            chip_designs.push(ChipDesign {
                label: label.clone(),
                cores,
                cap_w: *cap_w,
            });
        }
        let n_designs = chip_designs.len();
        let chips = (0..n_chips).map(|i| (i % n_designs) as u16).collect();
        FleetSpec {
            core_designs,
            chip_designs,
            chips,
            n_phases: table.n_phases,
        }
    }

    /// Builds a roster by running the multicore search once per
    /// `(budget, objective)` pair — throughput-tuned and EDP-tuned
    /// chips at every requested peak-power budget — and replicating
    /// the winners round-robin over `n_chips` sockets. Runtime caps
    /// are [`TDP_FACTOR`] of each search budget. Budgets no chip can
    /// satisfy are skipped.
    ///
    /// # Panics
    ///
    /// Panics if no budget admits any feasible chip.
    pub fn from_search(
        table: &PerfTable,
        space: &DesignSpace,
        budgets_w: &[f64],
        n_chips: usize,
    ) -> FleetSpec {
        let eval = Evaluator::new(space, table, 8);
        let candidates: Vec<CoreChoice> = space.ids().map(CoreChoice::Composite).collect();
        let cfg = SearchConfig {
            pool_cap: 60,
            restarts: 1,
            ..Default::default()
        };
        let mut designs = Vec::new();
        for &w in budgets_w {
            for (objective, tag) in [(Objective::Throughput, "tp"), (Objective::Edp, "edp")] {
                let Some(r) = search(&eval, &candidates, objective, Budget::PeakPower(w), &cfg)
                else {
                    continue;
                };
                let mut ids = [DesignId { fs: 0, ua: 0 }; 4];
                for (slot, c) in r.cores.iter().enumerate() {
                    match c {
                        CoreChoice::Composite(id) => ids[slot] = *id,
                        CoreChoice::Vendor(..) => {
                            unreachable!("composite-only candidate pool")
                        }
                    }
                }
                designs.push((ids, w * TDP_FACTOR, format!("{tag}-{w:.0}w")));
            }
        }
        assert!(
            !designs.is_empty(),
            "no feasible chip at any requested budget"
        );
        Self::from_chips(table, space, &designs, n_chips)
    }

    /// Number of physical chips in the fleet.
    pub fn n_chips(&self) -> usize {
        self.chips.len()
    }

    /// Number of physical cores in the fleet.
    pub fn n_cores(&self) -> usize {
        self.chips.len() * 4
    }

    /// The best (lowest) cycles-per-unit any fleet core design
    /// achieves for a workload — the unloaded-fleet ideal service
    /// rate that per-thread slowdowns are normalized against.
    pub fn best_cpu(&self, w: &Workload) -> f64 {
        self.core_designs
            .iter()
            .map(|c| c.cpu(w))
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean cycles-per-unit of one core design over the pure corpus
    /// phases (load-calibration proxy).
    pub fn mean_cpu(&self, design: u16) -> f64 {
        let perf = &self.core_designs[design as usize].perf;
        perf.iter().map(|p| p.cycles_per_unit).sum::<f64>() / perf.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdp_factor_is_a_real_constraint() {
        // A cap derived from any positive budget must sit strictly
        // between half the budget and the budget itself.
        let budget = 20.0;
        let cap = budget * TDP_FACTOR;
        assert!(cap < budget && cap > 0.5 * budget);
    }
}
