//! Migration pricing: the per-phase cost-class tensor and the
//! Mavrogeorgis-grounded latency constants.
//!
//! The scheduler prices a prospective migration in two steps. First it
//! looks up the migration's **cost class** — native, transforming, or
//! state-transforming — in a dense `[phase][from_fs][to_fs]` tensor
//! built ahead of time. The tensor's entries come from
//! [`cisa_migrate::classify_migration_with`]: the conservative
//! feature-set-pair class, refined downward wherever the static
//! analyzer ([`cisa_analyze::analyze`] over the phase's actual
//! compiled bytes) proves a cheaper class at some program point.
//! Second it converts the class to cycles with
//! [`class_latency_cycles`].
//!
//! The latencies are grounded in the heterogeneous-ISA migration
//! measurements of Mavrogeorgis et al. (PAPERS.md): migrations that
//! need no state transformation cost on the order of a scheduler hop
//! plus cold microarchitectural state (~10 us), binary-transforming
//! migrations pay an extra software pass over the function image
//! (~100 us), and state-transforming migrations — re-representing
//! live 64-bit state — are *orders of magnitude* costlier (~ms), which
//! is the entire reason the scheduler must price classes rather than
//! count migrations.

use cisa_analyze::{analyze, lay_out};
use cisa_compiler::{compile, CompileOptions};
use cisa_explore::SweepRunner;
use cisa_isa::FeatureSet;
use cisa_migrate::{classify_migration, classify_migration_with, MigrationClass};
use cisa_workloads::{generate, PhaseSpec};

use crate::workload::Workload;

/// Cycles charged for a [`MigrationClass::Native`] migration: the
/// scheduler hop plus cold microarchitectural state (~8 us at 3 GHz).
/// Mavrogeorgis et al. measure state-transformation-free migrations at
/// context-switch cost.
pub const NATIVE_MIGRATION_CYCLES: f64 = 24_000.0;

/// Cycles charged for a [`MigrationClass::Transforming`] migration:
/// the native cost plus one software pass over the function image to
/// patch the feature gaps (~80 us at 3 GHz). Still
/// state-transformation-free in the Mavrogeorgis taxonomy — the extra
/// cost is code transformation, not state transformation.
pub const TRANSFORMING_MIGRATION_CYCLES: f64 = 240_000.0;

/// Cycles charged for a [`MigrationClass::StateTransforming`]
/// migration: live 64-bit values and fat pointers are re-represented
/// before the thread can run (~3 ms at 3 GHz). Mavrogeorgis et al.
/// put full state transformation orders of magnitude above the free
/// classes, and the ratio here (375x native) preserves that gap.
pub const STATE_TRANSFORMING_MIGRATION_CYCLES: f64 = 9_000_000.0;

/// Fraction of the destination core's peak power drawn while a
/// migration is in flight (state copy and transformation run at
/// near-idle power; matches the evaluator's idle fraction).
pub const MIGRATION_POWER_FRACTION: f64 = 0.3;

/// Latency in cycles of one migration of the given class.
pub fn class_latency_cycles(class: MigrationClass) -> f64 {
    match class {
        MigrationClass::Native => NATIVE_MIGRATION_CYCLES,
        MigrationClass::Transforming => TRANSFORMING_MIGRATION_CYCLES,
        MigrationClass::StateTransforming => STATE_TRANSFORMING_MIGRATION_CYCLES,
    }
}

/// Dense migration cost-class tensor: `[phase][from_fs][to_fs]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationMatrix {
    n_phases: usize,
    n_fs: usize,
    classes: Vec<u8>,
}

impl MigrationMatrix {
    /// The conservative tensor: every entry is the feature-set-pair
    /// class from [`classify_migration`], identical across phases.
    /// Used by tests and as the fallback when no static analysis is
    /// wanted.
    pub fn conservative(n_phases: usize, feature_sets: &[FeatureSet]) -> Self {
        let n_fs = feature_sets.len();
        let mut pair = vec![0u8; n_fs * n_fs];
        for (fi, from) in feature_sets.iter().enumerate() {
            for (ti, to) in feature_sets.iter().enumerate() {
                pair[fi * n_fs + ti] = classify_migration(*from, *to).class.index() as u8;
            }
        }
        let mut classes = Vec::with_capacity(n_phases * n_fs * n_fs);
        for _ in 0..n_phases {
            classes.extend_from_slice(&pair);
        }
        MigrationMatrix {
            n_phases,
            n_fs,
            classes,
        }
    }

    /// The statically-refined tensor: compiles every `(phase, from)`
    /// pair, recovers its migration-point map with the `cisa-analyze`
    /// pipeline, and prices each `(phase, from, to)` entry with
    /// [`classify_migration_with`] — so a migration the analyzer can
    /// prove state-transformation-free at some program point is priced
    /// at the cheaper class. Compiles fan out on the runner; the
    /// result is identical at any thread count.
    pub fn analyzed(
        phases: &[PhaseSpec],
        feature_sets: &[FeatureSet],
        runner: &SweepRunner,
    ) -> Self {
        let n_fs = feature_sets.len();
        let pairs: Vec<(usize, usize)> = (0..phases.len())
            .flat_map(|pi| (0..n_fs).map(move |fi| (pi, fi)))
            .collect();
        // One row of `to`-classes per (phase, from) pair.
        let rows = runner.map(&pairs, |&(pi, fi)| {
            let from = feature_sets[fi];
            let map = compile(&generate(&phases[pi]), &from, &CompileOptions::default())
                .ok()
                .and_then(|code| lay_out(&code).ok())
                .map(|image| analyze(&image.bytes).points);
            let mut row = vec![0u8; n_fs];
            for (ti, to) in feature_sets.iter().enumerate() {
                let cost = classify_migration_with(from, *to, map.as_ref());
                row[ti] = cost.class.index() as u8;
            }
            row
        });
        let classes = rows.into_iter().flatten().collect();
        MigrationMatrix {
            n_phases: phases.len(),
            n_fs,
            classes,
        }
    }

    /// The class of migrating phase `phase` code compiled for feature
    /// set `from` onto a core implementing `to`.
    #[inline]
    pub fn class(&self, phase: usize, from: u16, to: u16) -> MigrationClass {
        let i = (phase * self.n_fs + from as usize) * self.n_fs + to as usize;
        MigrationClass::ALL[self.classes[i] as usize]
    }

    /// The class for a (possibly blended) workload: the costlier of
    /// the two component phases' classes — a blended thread's image
    /// contains both phases' code, so the migration pays for the
    /// worse one.
    #[inline]
    pub fn class_for(&self, w: &Workload, from: u16, to: u16) -> MigrationClass {
        let a = self.class(w.p1 as usize, from, to);
        if w.is_pure() {
            return a;
        }
        a.max(self.class(w.p2 as usize, from, to))
    }

    /// Number of phase rows.
    pub fn n_phases(&self) -> usize {
        self.n_phases
    }

    /// Number of feature sets per axis.
    pub fn n_fs(&self) -> usize {
        self.n_fs
    }

    /// Count of entries in each class, in [`MigrationClass::ALL`]
    /// order (reported by `fleet_bench` to show how much the static
    /// refinement buys).
    pub fn class_counts(&self) -> [u64; 3] {
        let mut out = [0u64; 3];
        for &c in &self.classes {
            out[c as usize] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisa_workloads::all_phases;

    #[test]
    fn latencies_preserve_the_order_of_magnitude_gap() {
        let native = class_latency_cycles(MigrationClass::Native);
        let transforming = class_latency_cycles(MigrationClass::Transforming);
        let state = class_latency_cycles(MigrationClass::StateTransforming);
        assert!(transforming >= 5.0 * native);
        assert!(state >= 10.0 * transforming);
        for c in MigrationClass::ALL {
            assert!(class_latency_cycles(c) > 0.0);
        }
        // Ascending cost order matches the class order.
        assert!(
            class_latency_cycles(MigrationClass::Native)
                < class_latency_cycles(MigrationClass::Transforming)
        );
        assert!(
            class_latency_cycles(MigrationClass::Transforming)
                < class_latency_cycles(MigrationClass::StateTransforming)
        );
    }

    #[test]
    fn conservative_matrix_matches_pairwise_classifier() {
        let fss = FeatureSet::all();
        let m = MigrationMatrix::conservative(3, &fss);
        for (fi, from) in fss.iter().enumerate() {
            for (ti, to) in fss.iter().enumerate() {
                let expect = classify_migration(*from, *to).class;
                for p in 0..3 {
                    assert_eq!(m.class(p, fi as u16, ti as u16), expect);
                }
            }
        }
    }

    #[test]
    fn analyzed_matrix_only_refines_downward() {
        let fss = FeatureSet::all();
        let phases: Vec<PhaseSpec> = all_phases().into_iter().take(2).collect();
        let runner = SweepRunner::new(2);
        let analyzed = MigrationMatrix::analyzed(&phases, &fss, &runner);
        let conservative = MigrationMatrix::conservative(phases.len(), &fss);
        let mut refined = 0u32;
        for p in 0..phases.len() {
            for f in 0..fss.len() as u16 {
                for t in 0..fss.len() as u16 {
                    let a = analyzed.class(p, f, t);
                    let c = conservative.class(p, f, t);
                    assert!(a <= c, "analysis must never make a migration costlier");
                    if a < c {
                        refined += 1;
                    }
                }
            }
        }
        assert!(refined > 0, "static analysis should refine some pairs");
    }

    #[test]
    fn blended_workloads_pay_the_costlier_component() {
        let fss = FeatureSet::all();
        let m = MigrationMatrix::conservative(2, &fss);
        let w = Workload {
            p1: 0,
            p2: 1,
            alpha: 0.5,
        };
        for f in 0..fss.len() as u16 {
            for t in 0..fss.len() as u16 {
                let c = m.class_for(&w, f, t);
                assert!(c >= m.class(0, f, t) && c >= m.class(1, f, t));
            }
        }
    }
}
