//! Per-policy fleet metrics and the deterministic JSON report.
//!
//! One [`PolicyReport`] summarizes one full fleet run under one
//! policy; a [`FleetReport`] bundles the per-policy reports with the
//! run configuration and the headline policy-vs-baseline gains.
//! `FleetReport::to_json` renders flat JSON with a fixed field order
//! and fixed float formatting, so a committed `BENCH_fleet.json` is
//! reproducible byte-for-byte and `fleet_bench --check` can gate on
//! its fields.

use std::fmt::Write as _;

/// Metrics of one full fleet run under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Policy name ([`crate::SchedulerPolicy::name`]).
    pub policy: String,
    /// Threads that arrived (equals `completed`: runs drain).
    pub arrivals: u64,
    /// Threads that ran to completion.
    pub completed: u64,
    /// Total work units executed.
    pub total_work: f64,
    /// Fleet makespan in cycles (last event across all shards).
    pub makespan_cycles: f64,
    /// Sustained throughput in work units per second.
    pub throughput_units_per_s: f64,
    /// Total energy (J), including idle and migration energy.
    pub energy_j: f64,
    /// Energy per unit of work (J).
    pub energy_per_unit_j: f64,
    /// Mean thread response time (arrival to completion) in seconds.
    pub mean_response_s: f64,
    /// The fleet EDP: energy per unit x mean response time (J*s).
    /// Lower is better; the scale every policy is compared on.
    pub edp: f64,
    /// Median per-thread slowdown vs the unloaded best fleet core.
    pub p50_slowdown: f64,
    /// 99th-percentile per-thread slowdown (the tail the
    /// migration-aware policy is designed to protect).
    pub p99_slowdown: f64,
    /// Worst per-thread slowdown.
    pub max_slowdown: f64,
    /// Migrations taken, by class in [`cisa_migrate::MigrationClass::ALL`]
    /// order: native, transforming, state-transforming.
    pub migrations: [u64; 3],
    /// Total migrations taken.
    pub migrations_total: u64,
    /// Idle-core placements declined because the chip cap had no
    /// headroom for the core's peak power.
    pub cap_blocked: u64,
    /// Max over chips of (peak observed active power / cap): `<= 1.0`
    /// in any correct run.
    pub max_cap_utilization: f64,
}

/// A full `fleet_bench` result: configuration echo plus one
/// [`PolicyReport`] per policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Chips simulated.
    pub n_chips: u64,
    /// Thread-lifetimes served per policy.
    pub n_threads: u64,
    /// Deterministic shard count.
    pub n_shards: u64,
    /// Arrival-stream seed.
    pub seed: u64,
    /// Migration-matrix entries per class (native, transforming,
    /// state-transforming) — how the static refinement priced the
    /// design space.
    pub matrix_classes: [u64; 3],
    /// One report per policy, in run order.
    pub policies: Vec<PolicyReport>,
}

impl FleetReport {
    /// The report of a named policy, if it ran.
    pub fn policy(&self, name: &str) -> Option<&PolicyReport> {
        self.policies.iter().find(|p| p.policy == name)
    }

    /// Renders the report as flat JSON with stable field order and
    /// formatting. Per-policy fields are prefixed with the policy name
    /// (`static_random_edp`), and the headline gains of every policy
    /// over the first (baseline) policy are included
    /// (`migration_aware_edp_gain`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let num = |s: &mut String, k: &str, v: f64| {
            let _ = writeln!(s, "  \"{k}\": {v:.6e},");
        };
        let int = |s: &mut String, k: &str, v: u64| {
            let _ = writeln!(s, "  \"{k}\": {v},");
        };
        int(&mut s, "n_chips", self.n_chips);
        int(&mut s, "n_threads", self.n_threads);
        int(&mut s, "n_shards", self.n_shards);
        int(&mut s, "seed", self.seed);
        int(&mut s, "matrix_native", self.matrix_classes[0]);
        int(&mut s, "matrix_transforming", self.matrix_classes[1]);
        int(&mut s, "matrix_state_transforming", self.matrix_classes[2]);
        for p in &self.policies {
            let k = p.policy.replace('-', "_");
            int(&mut s, &format!("{k}_completed"), p.completed);
            num(
                &mut s,
                &format!("{k}_throughput_units_per_s"),
                p.throughput_units_per_s,
            );
            num(
                &mut s,
                &format!("{k}_energy_per_unit_j"),
                p.energy_per_unit_j,
            );
            num(&mut s, &format!("{k}_mean_response_s"), p.mean_response_s);
            num(&mut s, &format!("{k}_edp"), p.edp);
            num(&mut s, &format!("{k}_p50_slowdown"), p.p50_slowdown);
            num(&mut s, &format!("{k}_p99_slowdown"), p.p99_slowdown);
            num(&mut s, &format!("{k}_max_slowdown"), p.max_slowdown);
            int(&mut s, &format!("{k}_migrations"), p.migrations_total);
            int(&mut s, &format!("{k}_migrations_native"), p.migrations[0]);
            int(
                &mut s,
                &format!("{k}_migrations_transforming"),
                p.migrations[1],
            );
            int(
                &mut s,
                &format!("{k}_migrations_state_transforming"),
                p.migrations[2],
            );
            int(&mut s, &format!("{k}_cap_blocked"), p.cap_blocked);
            num(
                &mut s,
                &format!("{k}_max_cap_utilization"),
                p.max_cap_utilization,
            );
        }
        if let Some(base) = self.policies.first() {
            for p in self.policies.iter().skip(1) {
                let k = p.policy.replace('-', "_");
                num(&mut s, &format!("{k}_edp_gain"), base.edp / p.edp);
                num(
                    &mut s,
                    &format!("{k}_p99_slowdown_gain"),
                    base.p99_slowdown / p.p99_slowdown,
                );
                num(
                    &mut s,
                    &format!("{k}_throughput_gain"),
                    p.throughput_units_per_s / base.throughput_units_per_s,
                );
            }
        }
        // Trailing-comma cleanup: replace the final ",\n" with "\n".
        if s.ends_with(",\n") {
            s.truncate(s.len() - 2);
            s.push('\n');
        }
        s.push('}');
        s.push('\n');
        s
    }
}

/// Exact percentile of a **sorted** slowdown slice (nearest-rank).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn json_is_flat_and_balanced() {
        let p = PolicyReport {
            policy: "static-random".into(),
            arrivals: 10,
            completed: 10,
            total_work: 100.0,
            makespan_cycles: 1e6,
            throughput_units_per_s: 1.0,
            energy_j: 2.0,
            energy_per_unit_j: 0.02,
            mean_response_s: 0.5,
            edp: 0.01,
            p50_slowdown: 1.5,
            p99_slowdown: 3.0,
            max_slowdown: 4.0,
            migrations: [1, 2, 3],
            migrations_total: 6,
            cap_blocked: 0,
            max_cap_utilization: 0.9,
        };
        let mut ma = p.clone();
        ma.policy = "migration-aware".into();
        ma.edp = 0.005;
        let r = FleetReport {
            n_chips: 4,
            n_threads: 10,
            n_shards: 2,
            seed: 1,
            matrix_classes: [10, 5, 2],
            policies: vec![p, ma],
        };
        let json = r.to_json();
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(!json.contains(",\n}"), "no trailing comma");
        assert!(json.contains("\"migration_aware_edp_gain\": 2.0"));
        assert!(json.contains("\"static_random_edp\""));
        assert_eq!(r.policy("migration-aware").map(|p| p.edp), Some(0.005));
    }
}
