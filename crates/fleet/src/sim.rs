//! The discrete-event fleet engine.
//!
//! # Event model
//!
//! The fleet is partitioned into a **fixed** number of shards
//! (independent of the worker count): chip `i` belongs to shard
//! `i % n_shards`, and thread-lifetime `t` arrives at shard
//! `t % n_shards`. Each shard is a self-contained open queueing
//! system simulated *serially*: a binary heap of segment-completion
//! events merged against the shard's lazy arrival stream, with ties
//! broken by insertion sequence. Shards fan out over
//! [`SweepRunner::map`] (order-preserving) and merge in shard order,
//! so a full fleet run is **bit-identical at any `CISA_THREADS`** —
//! the same guarantee every other subsystem in this repository makes.
//!
//! # Power-cap accounting
//!
//! Chip power is tracked in integer milliwatts (exact arithmetic — no
//! floating-point drift across millions of events). Starting a thread
//! on a core requires `active_mw + core.peak_mw <= cap_mw`; the
//! chip's peak observed `active_mw` is recorded so tests can assert
//! no chip ever exceeds its cap at any event timestamp. Idle cores
//! burn [`IDLE_POWER_FRACTION`] of their peak (the same constant the
//! multicore evaluator charges for early-finishing cores).
//!
//! # Scheduling
//!
//! At every arrival and segment completion the shard runs a dispatch
//! pass: for up to [`FleetConfig::dispatch_window`] queued threads
//! (FIFO order), it builds one [`Candidate`] per idle power-feasible
//! core and asks the policy to choose. Each successful placement
//! restarts the pass (power headroom changed); the pass ends when no
//! queued thread in the window can be placed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use cisa_explore::SweepRunner;
use cisa_power::CLOCK_HZ;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::chips::FleetSpec;
use crate::migration::{class_latency_cycles, MigrationMatrix, MIGRATION_POWER_FRACTION};
use crate::policy::{Candidate, PlacementCtx, SchedulerPolicy};
use crate::report::{percentile, FleetReport, PolicyReport};
use crate::workload::{ArrivalParams, ArrivalStream, Workload};

/// Fraction of peak power an idle core draws (matches the multicore
/// evaluator's idle charge).
pub const IDLE_POWER_FRACTION: f64 = 0.3;

/// Headroom slack on the integer-milliwatt cap comparison (none —
/// integer arithmetic needs no epsilon; kept as a named constant so
/// the accounting rule is explicit).
const CAP_SLACK_MW: u64 = 0;

/// Fleet-run configuration (everything except the hardware roster,
/// which lives in [`FleetSpec`], and the policy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Arrival-stream seed.
    pub seed: u64,
    /// Thread-lifetimes to serve.
    pub n_threads: u64,
    /// Fixed shard count (clamped to the chip count). Results depend
    /// on this value but not on the worker count.
    pub n_shards: usize,
    /// Offered load as a fraction of the fleet's stable capacity
    /// (`0 < utilization < 1`; the capacity model is documented on
    /// [`FleetConfig::shard_rate`]).
    pub utilization: f64,
    /// Fraction of threads carrying a two-phase blended fingerprint.
    pub mix_fraction: f64,
    /// Segments per thread are uniform in `1..=max_segments`.
    pub max_segments: u32,
    /// Minimum per-segment work (units, log-uniform draw).
    pub work_min: f64,
    /// Maximum per-segment work (units).
    pub work_max: f64,
    /// Queued threads examined per dispatch pass (FIFO head window).
    pub dispatch_window: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0xF1EE7,
            n_threads: 20_000,
            n_shards: 64,
            utilization: 0.55,
            mix_fraction: 0.3,
            max_segments: 4,
            work_min: 60.0,
            work_max: 600.0,
            dispatch_window: 8,
        }
    }
}

impl FleetConfig {
    /// The arrival parameters shared by every shard.
    pub fn arrival_params(&self, n_phases: u16) -> ArrivalParams {
        ArrivalParams {
            seed: self.seed,
            n_phases,
            mix_fraction: self.mix_fraction,
            max_segments: self.max_segments,
            work_min: self.work_min,
            work_max: self.work_max,
        }
    }

    /// The effective shard count for a roster (never more shards than
    /// chips, never zero).
    pub fn effective_shards(&self, spec: &FleetSpec) -> usize {
        self.n_shards.clamp(1, spec.n_chips().max(1))
    }

    /// A shard's arrival rate in threads per cycle:
    /// `utilization x min(power-capped service capacity, static-random
    /// stability bound)`.
    ///
    /// The capacity term sums, per chip, `1 / mean_cpu` over the
    /// largest prefix of cores (cheapest peak first) that fits the
    /// chip cap — the sustainable unit rate with power-feasible
    /// concurrency — divided by the mean work per thread. The
    /// stability term bounds the rate at which *uniformly random*
    /// binding keeps every core's queue stable (`n_cores / (mean_work
    /// x slowest mean_cpu)`), so the baseline policy saturates but
    /// does not diverge.
    pub fn shard_rate(&self, spec: &FleetSpec, shard: usize, n_shards: usize) -> f64 {
        let mean_work = self.arrival_params(spec.n_phases as u16).mean_thread_work();
        let mut unit_rate = 0.0f64;
        let mut n_cores = 0u64;
        let mut worst_cpu = 0.0f64;
        for (ci, &cd) in spec.chips.iter().enumerate() {
            if ci % n_shards != shard {
                continue;
            }
            let chip = &spec.chip_designs[cd as usize];
            let mut cores: Vec<u16> = chip.cores.to_vec();
            cores.sort_by(|a, b| {
                spec.core_designs[*a as usize]
                    .peak_w
                    .total_cmp(&spec.core_designs[*b as usize].peak_w)
            });
            let mut active_w = 0.0;
            for &c in &cores {
                let d = &spec.core_designs[c as usize];
                if active_w + d.peak_w <= chip.cap_w {
                    active_w += d.peak_w;
                    unit_rate += 1.0 / spec.mean_cpu(c);
                }
            }
            for &c in &chip.cores {
                n_cores += 1;
                worst_cpu = worst_cpu.max(spec.mean_cpu(c));
            }
        }
        if n_cores == 0 {
            return 0.0;
        }
        let capacity = unit_rate / mean_work;
        let static_bound = n_cores as f64 / (mean_work * worst_cpu);
        self.utilization * capacity.min(static_bound)
    }
}

/// A segment-completion event. Ordered by time (total order over
/// `f64`) then insertion sequence, inverted for the min-heap.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    thread: u32,
    core: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Per-thread simulation state.
#[derive(Debug)]
struct Thr {
    workload: Workload,
    segments: Vec<f64>,
    arrival: f64,
    ready_since: f64,
    seg_idx: u32,
    cur_work: f64,
    executed: f64,
    bound: Option<u32>,
    last_core: Option<u32>,
    compiled_fs: u16,
    placed: bool,
}

/// Per-core simulation state.
#[derive(Debug)]
struct CoreSt {
    design: u16,
    chip: u32,
    peak_mw: u64,
    busy: Option<u32>,
    busy_cycles: f64,
}

/// Per-chip simulation state (power in exact integer milliwatts).
#[derive(Debug)]
struct ChipSt {
    cap_mw: u64,
    active_mw: u64,
    max_mw: u64,
}

/// Everything one shard reports back for the deterministic merge.
/// Public so the conservation test suite can assert shard-level
/// invariants directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Threads that arrived at this shard.
    pub arrivals: u64,
    /// Threads that completed (equals `arrivals`: shards drain).
    pub completed: u64,
    /// Total work demanded by completed threads (units).
    pub work_demanded: f64,
    /// Total work executed across all segment completions (units).
    pub work_executed: f64,
    /// Service cycles scheduled at dispatch (work x cpu + migration).
    pub service_scheduled: f64,
    /// Busy cycles accumulated at segment completion.
    pub busy_cycles: f64,
    /// Total energy (J): execution + migration + idle.
    pub energy_j: f64,
    /// Sum of response times (cycles) over completed threads.
    pub response_cycles: f64,
    /// Per-thread slowdowns vs the unloaded best fleet core, in
    /// completion order.
    pub slowdowns: Vec<f64>,
    /// Migrations taken, by class index.
    pub migrations: [u64; 3],
    /// Idle-core placements declined for lack of cap headroom.
    pub cap_blocked: u64,
    /// Shard makespan (cycles).
    pub makespan: f64,
    /// Max over chips of peak observed active power / cap.
    pub max_cap_utilization: f64,
}

/// One shard's serial event loop.
struct Shard<'a> {
    spec: &'a FleetSpec,
    mm: &'a MigrationMatrix,
    policy: &'a dyn SchedulerPolicy,
    cfg: &'a FleetConfig,
    cores: Vec<CoreSt>,
    chips: Vec<ChipSt>,
    threads: Vec<Thr>,
    ready: VecDeque<u32>,
    heap: BinaryHeap<Event>,
    seq: u64,
    now: f64,
    idle_cores: Vec<u32>,
    cands: Vec<Candidate>,
    stats: ShardStats,
}

/// Converts watts to exact integer milliwatts for cap accounting.
fn mw(w: f64) -> u64 {
    (w * 1000.0).round() as u64
}

impl<'a> Shard<'a> {
    fn new(
        spec: &'a FleetSpec,
        mm: &'a MigrationMatrix,
        policy: &'a dyn SchedulerPolicy,
        cfg: &'a FleetConfig,
        shard: usize,
        n_shards: usize,
    ) -> Self {
        let mut cores = Vec::new();
        let mut chips = Vec::new();
        for (ci, &cd) in spec.chips.iter().enumerate() {
            if ci % n_shards != shard {
                continue;
            }
            let design = &spec.chip_designs[cd as usize];
            let chip_idx = chips.len() as u32;
            chips.push(ChipSt {
                cap_mw: mw(design.cap_w),
                active_mw: 0,
                max_mw: 0,
            });
            for &c in &design.cores {
                cores.push(CoreSt {
                    design: c,
                    chip: chip_idx,
                    peak_mw: mw(spec.core_designs[c as usize].peak_w),
                    busy: None,
                    busy_cycles: 0.0,
                });
            }
        }
        Shard {
            spec,
            mm,
            policy,
            cfg,
            cores,
            chips,
            threads: Vec::new(),
            ready: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            idle_cores: Vec::new(),
            cands: Vec::new(),
            stats: ShardStats {
                arrivals: 0,
                completed: 0,
                work_demanded: 0.0,
                work_executed: 0.0,
                service_scheduled: 0.0,
                busy_cycles: 0.0,
                energy_j: 0.0,
                response_cycles: 0.0,
                slowdowns: Vec::new(),
                migrations: [0; 3],
                cap_blocked: 0,
                makespan: 0.0,
                max_cap_utilization: 0.0,
            },
        }
    }

    /// Cores that can ever run a thread alone under their chip's cap
    /// (the static policy's binding universe).
    fn eligible_cores(&self) -> Vec<u32> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.peak_mw <= self.chips[c.chip as usize].cap_mw)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// One dispatch pass: place queued threads until no head-window
    /// thread can be placed.
    fn dispatch(&mut self) {
        loop {
            self.idle_cores.clear();
            for (i, c) in self.cores.iter().enumerate() {
                if c.busy.is_none() {
                    self.idle_cores.push(i as u32);
                }
            }
            if self.idle_cores.is_empty() || self.ready.is_empty() {
                return;
            }
            let window = self.cfg.dispatch_window.min(self.ready.len());
            let mut placed: Option<(usize, usize)> = None;
            for qi in 0..window {
                let tid = self.ready[qi];
                if let Some(ci) = self.consider(tid) {
                    placed = Some((qi, ci));
                    break;
                }
            }
            let Some((qi, ci)) = placed else { return };
            let tid = self.ready.remove(qi).expect("index in range");
            let cand = self.cands[ci];
            self.start_segment(tid, &cand);
        }
    }

    /// Builds the candidate list for a thread (into `self.cands`) and
    /// asks the policy. Returns the chosen candidate index.
    fn consider(&mut self, tid: u32) -> Option<usize> {
        let thr = &self.threads[tid as usize];
        self.cands.clear();
        for &core_idx in &self.idle_cores {
            let core = &self.cores[core_idx as usize];
            let chip = &self.chips[core.chip as usize];
            if chip.active_mw + core.peak_mw > chip.cap_mw + CAP_SLACK_MW {
                self.stats.cap_blocked += 1;
                continue;
            }
            let design = &self.spec.core_designs[core.design as usize];
            let (mig_class, mig_cycles) = if !thr.placed || thr.last_core == Some(core_idx) {
                (None, 0.0)
            } else {
                let class = self
                    .mm
                    .class_for(&thr.workload, thr.compiled_fs, design.id.fs);
                (Some(class), class_latency_cycles(class))
            };
            self.cands.push(Candidate {
                core: core_idx,
                design: core.design,
                peak_w: design.peak_w,
                cpu: design.cpu(&thr.workload),
                epu: design.epu(&thr.workload),
                mig_class,
                mig_cycles,
            });
        }
        if self.cands.is_empty() {
            return None;
        }
        let remaining: f64 = thr.segments[thr.seg_idx as usize..].iter().sum();
        let ctx = PlacementCtx {
            remaining_work: remaining,
            bound_core: thr.bound,
        };
        self.policy.choose(&ctx, &self.cands)
    }

    /// Starts the thread's next segment on the chosen core.
    fn start_segment(&mut self, tid: u32, cand: &Candidate) {
        let thr = &mut self.threads[tid as usize];
        let work = thr.segments[thr.seg_idx as usize];
        thr.cur_work = work;
        let design = &self.spec.core_designs[cand.design as usize];
        if let Some(class) = cand.mig_class {
            self.stats.migrations[class.index()] += 1;
            // A native migration runs the existing image unmodified;
            // transforming migrations rewrite the image for the
            // destination's feature set, which becomes the new
            // compiled-for set.
            if class != cisa_migrate::MigrationClass::Native {
                thr.compiled_fs = design.id.fs;
            }
        } else if !thr.placed {
            thr.compiled_fs = design.id.fs;
            thr.placed = true;
        }
        thr.last_core = Some(cand.core);
        let wait = self.now - thr.ready_since;
        if wait > 0.0 {
            cisa_obs::hist("fleet/queue_cycles", wait as u64);
        }
        let service = work * cand.cpu + cand.mig_cycles;
        self.stats.service_scheduled += service;
        self.stats.energy_j +=
            work * cand.epu + cand.mig_cycles / CLOCK_HZ * MIGRATION_POWER_FRACTION * design.peak_w;
        let core = &mut self.cores[cand.core as usize];
        core.busy = Some(tid);
        core.busy_cycles += service;
        let chip = &mut self.chips[core.chip as usize];
        chip.active_mw += core.peak_mw;
        chip.max_mw = chip.max_mw.max(chip.active_mw);
        self.seq += 1;
        self.heap.push(Event {
            time: self.now + service,
            seq: self.seq,
            thread: tid,
            core: cand.core,
        });
    }

    /// Processes one segment completion.
    fn complete_segment(&mut self, ev: Event) {
        let core = &mut self.cores[ev.core as usize];
        debug_assert_eq!(core.busy, Some(ev.thread));
        core.busy = None;
        let chip = &mut self.chips[core.chip as usize];
        chip.active_mw -= core.peak_mw;
        let thr = &mut self.threads[ev.thread as usize];
        self.stats.work_executed += thr.cur_work;
        thr.executed += thr.cur_work;
        thr.seg_idx += 1;
        thr.last_core = Some(ev.core);
        if (thr.seg_idx as usize) == thr.segments.len() {
            self.stats.completed += 1;
            let response = self.now - thr.arrival;
            self.stats.response_cycles += response;
            self.stats.work_demanded += thr.executed;
            let ideal = thr.executed * self.spec.best_cpu(&thr.workload);
            let slowdown = response / ideal;
            self.stats.slowdowns.push(slowdown);
            cisa_obs::hist("fleet/slowdown_centi", (slowdown * 100.0) as u64);
            // Free the per-thread segment storage; the slot stays (ids
            // are dense) but costs only the struct itself.
            thr.segments = Vec::new();
        } else {
            thr.ready_since = self.now;
            self.ready.push_back(ev.thread);
        }
    }

    /// Runs the shard to completion and returns its stats.
    fn run(mut self, shard: usize, n_shards: usize) -> ShardStats {
        let params = self.cfg.arrival_params(self.spec.n_phases as u16);
        let per_shard = self.cfg.n_threads / n_shards as u64
            + u64::from((shard as u64) < self.cfg.n_threads % n_shards as u64);
        let rate = self.cfg.shard_rate(self.spec, shard, n_shards);
        let eligible = self.eligible_cores();
        assert!(
            !eligible.is_empty() || per_shard == 0,
            "shard {shard} has no core that fits its chip cap"
        );
        let mut arrivals = ArrivalStream::new(
            params,
            shard as u64,
            shard as u64,
            n_shards as u64,
            per_shard,
            rate,
        );
        let mut next_arrival = arrivals.next();
        loop {
            let take_arrival = match (&next_arrival, self.heap.peek()) {
                (Some(a), Some(e)) => a.arrival_cycles < e.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                let spec = next_arrival.take().expect("checked above");
                next_arrival = arrivals.next();
                self.now = spec.arrival_cycles;
                self.stats.arrivals += 1;
                let mut rng = SmallRng::seed_from_u64(
                    self.cfg.seed ^ spec.id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let bound = self.policy.bind_on_arrival(&mut rng, &eligible);
                let tid = self.threads.len() as u32;
                self.threads.push(Thr {
                    workload: spec.workload,
                    segments: spec.segments,
                    arrival: spec.arrival_cycles,
                    ready_since: spec.arrival_cycles,
                    seg_idx: 0,
                    cur_work: 0.0,
                    executed: 0.0,
                    bound,
                    last_core: None,
                    compiled_fs: 0,
                    placed: false,
                });
                self.ready.push_back(tid);
            } else {
                let ev = self.heap.pop().expect("checked above");
                self.now = ev.time;
                self.complete_segment(ev);
            }
            self.dispatch();
        }
        self.stats.makespan = self.now;
        // Busy cycles come from the per-core accumulators; at drain
        // they must equal the service cycles scheduled at dispatch
        // (the conservation suite asserts this).
        self.stats.busy_cycles = self.cores.iter().map(|c| c.busy_cycles).sum();
        // Idle energy over the shard's lifetime.
        for c in &self.cores {
            let idle = (self.stats.makespan - c.busy_cycles).max(0.0);
            let peak = self.spec.core_designs[c.design as usize].peak_w;
            self.stats.energy_j += idle / CLOCK_HZ * IDLE_POWER_FRACTION * peak;
        }
        self.stats.max_cap_utilization = self
            .chips
            .iter()
            .map(|c| c.max_mw as f64 / c.cap_mw as f64)
            .fold(0.0, f64::max);
        self.stats
    }
}

/// Simulates one shard of the fleet (exposed for the test suites; use
/// [`simulate_fleet`] for full runs).
pub fn simulate_shard(
    spec: &FleetSpec,
    mm: &MigrationMatrix,
    policy: &dyn SchedulerPolicy,
    cfg: &FleetConfig,
    shard: usize,
    n_shards: usize,
) -> ShardStats {
    Shard::new(spec, mm, policy, cfg, shard, n_shards).run(shard, n_shards)
}

/// Runs the full fleet under one policy: shards fan out on the
/// runner, merge in shard order. Bit-identical at any worker count.
pub fn simulate_fleet(
    spec: &FleetSpec,
    mm: &MigrationMatrix,
    policy: &dyn SchedulerPolicy,
    cfg: &FleetConfig,
    runner: &SweepRunner,
) -> PolicyReport {
    let n_shards = cfg.effective_shards(spec);
    let shard_ids: Vec<usize> = (0..n_shards).collect();
    let outs = runner.map(&shard_ids, |&s| {
        let _span = cisa_obs::root_span("fleet/shard");
        simulate_shard(spec, mm, policy, cfg, s, n_shards)
    });
    merge(policy.name(), &outs)
}

/// Runs every policy over the same fleet and stream; returns the
/// bundled report (first policy is the gains baseline).
pub fn run_policies(
    spec: &FleetSpec,
    mm: &MigrationMatrix,
    policies: &[&dyn SchedulerPolicy],
    cfg: &FleetConfig,
    runner: &SweepRunner,
) -> FleetReport {
    let reports = policies
        .iter()
        .map(|p| simulate_fleet(spec, mm, *p, cfg, runner))
        .collect();
    FleetReport {
        n_chips: spec.n_chips() as u64,
        n_threads: cfg.n_threads,
        n_shards: cfg.effective_shards(spec) as u64,
        seed: cfg.seed,
        matrix_classes: mm.class_counts(),
        policies: reports,
    }
}

/// Deterministic shard-order merge into one [`PolicyReport`].
fn merge(policy: &str, outs: &[ShardStats]) -> PolicyReport {
    let mut arrivals = 0u64;
    let mut completed = 0u64;
    let mut total_work = 0.0f64;
    let mut energy = 0.0f64;
    let mut response = 0.0f64;
    let mut migrations = [0u64; 3];
    let mut cap_blocked = 0u64;
    let mut makespan = 0.0f64;
    let mut max_cap = 0.0f64;
    let mut slowdowns: Vec<f64> = Vec::new();
    for s in outs {
        arrivals += s.arrivals;
        completed += s.completed;
        total_work += s.work_executed;
        energy += s.energy_j;
        response += s.response_cycles;
        for (m, v) in migrations.iter_mut().zip(s.migrations) {
            *m += v;
        }
        cap_blocked += s.cap_blocked;
        makespan = makespan.max(s.makespan);
        max_cap = max_cap.max(s.max_cap_utilization);
        slowdowns.extend_from_slice(&s.slowdowns);
    }
    slowdowns.sort_by(f64::total_cmp);
    let migrations_total = migrations.iter().sum();
    let energy_per_unit = if total_work > 0.0 {
        energy / total_work
    } else {
        0.0
    };
    let mean_response_s = if completed > 0 {
        response / completed as f64 / CLOCK_HZ
    } else {
        0.0
    };
    cisa_obs::counter("fleet/arrivals", arrivals);
    cisa_obs::counter("fleet/completions", completed);
    cisa_obs::counter("fleet/migrations", migrations_total);
    cisa_obs::counter("fleet/migrations/native", migrations[0]);
    cisa_obs::counter("fleet/migrations/transforming", migrations[1]);
    cisa_obs::counter("fleet/migrations/state_transforming", migrations[2]);
    cisa_obs::counter("fleet/cap_blocked", cap_blocked);
    PolicyReport {
        policy: policy.to_string(),
        arrivals,
        completed,
        total_work,
        makespan_cycles: makespan,
        throughput_units_per_s: if makespan > 0.0 {
            total_work / (makespan / CLOCK_HZ)
        } else {
            0.0
        },
        energy_j: energy,
        energy_per_unit_j: energy_per_unit,
        mean_response_s,
        edp: energy_per_unit * mean_response_s,
        p50_slowdown: percentile(&slowdowns, 0.50),
        p99_slowdown: percentile(&slowdowns, 0.99),
        max_slowdown: slowdowns.last().copied().unwrap_or(0.0),
        migrations,
        migrations_total,
        cap_blocked,
        max_cap_utilization: max_cap,
    }
}
