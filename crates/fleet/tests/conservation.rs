//! Seeded conservation properties of the fleet engine.
//!
//! Two invariants hold for every policy, seed, and load level:
//!
//! - **Thread-cycle conservation** — work is neither created nor lost
//!   by migrations: every completed thread executed exactly its
//!   demanded work, and the service cycles scheduled at dispatch
//!   equal the busy cycles accumulated on cores.
//! - **Power-cap safety** — chip power changes only at event
//!   timestamps, and the recorded per-chip maximum (exact integer
//!   milliwatt accounting) never exceeds the cap.

use std::sync::OnceLock;

use cisa_explore::{DesignId, DesignSpace, PerfTable};
use cisa_fleet::{
    simulate_shard, AffinityGreedy, FleetConfig, FleetSpec, MigrationAware, MigrationMatrix,
    SchedulerPolicy, StaticRandom,
};
use cisa_isa::FeatureSet;
use cisa_workloads::all_phases;

fn fixtures() -> &'static (FleetSpec, MigrationMatrix) {
    static CELL: OnceLock<(FleetSpec, MigrationMatrix)> = OnceLock::new();
    CELL.get_or_init(|| {
        let space = DesignSpace::new();
        let phases: Vec<_> = all_phases().into_iter().filter(|p| p.index == 0).collect();
        let table = PerfTable::build_for_phases(&space, &phases);
        let chip = |ids: [DesignId; 4], label: &str| {
            let sum: f64 = ids.iter().map(|id| space.budget(*id).1).sum();
            (ids, 0.75 * sum, label.to_string())
        };
        let designs = vec![
            chip(
                [
                    DesignId { fs: 1, ua: 20 },
                    DesignId { fs: 7, ua: 90 },
                    DesignId { fs: 14, ua: 150 },
                    DesignId { fs: 24, ua: 175 },
                ],
                "hetero",
            ),
            chip(
                [
                    DesignId { fs: 9, ua: 60 },
                    DesignId { fs: 9, ua: 60 },
                    DesignId { fs: 9, ua: 60 },
                    DesignId { fs: 9, ua: 60 },
                ],
                "homo",
            ),
        ];
        let spec = FleetSpec::from_chips(&table, &space, &designs, 12);
        let mm = MigrationMatrix::conservative(table.n_phases, &FeatureSet::all());
        (spec, mm)
    })
}

fn rel_eq(a: f64, b: f64, tol: f64, what: &str) {
    let denom = a.abs().max(b.abs()).max(1e-12);
    assert!(
        ((a - b) / denom).abs() < tol,
        "{what}: {a} vs {b} differ beyond {tol}"
    );
}

#[test]
fn cycles_conserved_and_caps_respected_across_policies_and_seeds() {
    let (spec, mm) = fixtures();
    let policies: [&dyn SchedulerPolicy; 3] = [&StaticRandom, &AffinityGreedy, &MigrationAware];
    for seed in [1u64, 0xBEEF, 0x5EED_CAFE] {
        for policy in policies {
            let cfg = FleetConfig {
                seed,
                n_threads: 1_500,
                n_shards: 4,
                ..Default::default()
            };
            let n_shards = cfg.effective_shards(spec);
            let mut expected_total = 0u64;
            for shard in 0..n_shards {
                let s = simulate_shard(spec, mm, policy, &cfg, shard, n_shards);
                // Open system drains: every arrival completes.
                assert_eq!(
                    s.arrivals,
                    s.completed,
                    "drain ({seed:#x}, {})",
                    policy.name()
                );
                expected_total += s.arrivals;
                // Work conservation across migrations: executed work
                // equals demanded work of completed threads (sums
                // accumulate in different event orders, hence the
                // tolerance; the values per thread are identical).
                rel_eq(s.work_executed, s.work_demanded, 1e-9, "work conservation");
                // Cycle conservation: cycles scheduled at dispatch
                // equal cycles accumulated on cores.
                rel_eq(
                    s.service_scheduled,
                    s.busy_cycles,
                    1e-9,
                    "cycle conservation",
                );
                // Power-cap safety at every event timestamp (power is
                // piecewise-constant between events; the engine
                // records the max at each change, in exact integer
                // milliwatts).
                assert!(
                    s.max_cap_utilization <= 1.0,
                    "chip over cap: {} ({seed:#x}, {})",
                    s.max_cap_utilization,
                    policy.name()
                );
                assert!(s.max_cap_utilization > 0.0, "fleet did some work");
                // Slowdowns are normalized against the unloaded best
                // core, so none can be below 1.
                for &sl in &s.slowdowns {
                    assert!(sl >= 1.0 - 1e-9, "slowdown {sl} below ideal");
                }
                assert_eq!(s.slowdowns.len() as u64, s.completed);
                assert!(s.makespan > 0.0);
            }
            assert_eq!(expected_total, cfg.n_threads, "all threads served");
        }
    }
}

#[test]
fn static_random_never_migrates_but_dynamic_policies_do() {
    let (spec, mm) = fixtures();
    let cfg = FleetConfig {
        n_threads: 2_000,
        n_shards: 2,
        ..Default::default()
    };
    let n_shards = cfg.effective_shards(spec);
    let mut static_migs = 0u64;
    let mut aware_migs = 0u64;
    for shard in 0..n_shards {
        let s = simulate_shard(spec, mm, &StaticRandom, &cfg, shard, n_shards);
        static_migs += s.migrations.iter().sum::<u64>();
        let a = simulate_shard(spec, mm, &MigrationAware, &cfg, shard, n_shards);
        aware_migs += a.migrations.iter().sum::<u64>();
    }
    assert_eq!(static_migs, 0);
    assert!(aware_migs > 0);
}

#[test]
fn tighter_caps_mean_more_blocking_not_violations() {
    let (spec, mm) = fixtures();
    // Rebuild the same fleet with a much tighter cap: the engine must
    // respond by blocking placements, never by exceeding the cap.
    let space = DesignSpace::new();
    let phases: Vec<_> = all_phases().into_iter().filter(|p| p.index == 0).collect();
    let table = PerfTable::build_for_phases(&space, &phases);
    let base = &spec.chip_designs[0];
    let ids = [
        spec.core_designs[base.cores[0] as usize].id,
        spec.core_designs[base.cores[1] as usize].id,
        spec.core_designs[base.cores[2] as usize].id,
        spec.core_designs[base.cores[3] as usize].id,
    ];
    let max_peak = ids
        .iter()
        .map(|id| space.budget(*id).1)
        .fold(0.0f64, f64::max);
    let tight = FleetSpec::from_chips(
        &table,
        &space,
        &[(ids, max_peak * 1.05, "tight".to_string())],
        8,
    );
    let cfg = FleetConfig {
        n_threads: 1_000,
        n_shards: 2,
        ..Default::default()
    };
    let n_shards = cfg.effective_shards(&tight);
    for shard in 0..n_shards {
        let s = simulate_shard(&tight, mm, &AffinityGreedy, &cfg, shard, n_shards);
        assert!(s.max_cap_utilization <= 1.0, "tight cap violated");
        assert!(s.cap_blocked > 0, "a near-single-core cap must block");
        assert_eq!(s.arrivals, s.completed, "still drains");
    }
}
