//! Thread-count bit-identity of full fleet runs.
//!
//! The fleet engine's headline guarantee: a full run — arrivals,
//! placements, migrations, every derived metric — is bit-identical at
//! any `CISA_THREADS`. The shard partition is fixed by configuration;
//! workers only change which shards run concurrently, and the
//! order-preserving merge makes the result a pure function of
//! `(spec, matrix, policy, config)`.

use std::sync::OnceLock;

use cisa_explore::{DesignId, DesignSpace, PerfTable, SweepRunner};
use cisa_fleet::{
    simulate_fleet, AffinityGreedy, FleetConfig, FleetSpec, MigrationAware, MigrationMatrix,
    PolicyReport, SchedulerPolicy, StaticRandom,
};
use cisa_isa::FeatureSet;
use cisa_workloads::all_phases;

fn fixtures() -> &'static (DesignSpace, PerfTable, FleetSpec, MigrationMatrix) {
    static CELL: OnceLock<(DesignSpace, PerfTable, FleetSpec, MigrationMatrix)> = OnceLock::new();
    CELL.get_or_init(|| {
        let space = DesignSpace::new();
        let phases: Vec<_> = all_phases().into_iter().filter(|p| p.index == 0).collect();
        let table = PerfTable::build_for_phases(&space, &phases);
        let spec = test_fleet(&space, &table, 32);
        let mm = MigrationMatrix::conservative(table.n_phases, &FeatureSet::all());
        (space, table, spec, mm)
    })
}

/// A hand-picked heterogeneous fleet: two chip designs mixing feature
/// sets and microarchitectures, so migrations cross real feature gaps.
fn test_fleet(space: &DesignSpace, table: &PerfTable, n_chips: usize) -> FleetSpec {
    let chip = |ids: [DesignId; 4], label: &str| {
        let sum: f64 = ids.iter().map(|id| space.budget(*id).1).sum();
        (ids, 0.8 * sum, label.to_string())
    };
    let designs = vec![
        chip(
            [
                DesignId { fs: 0, ua: 30 },
                DesignId { fs: 5, ua: 100 },
                DesignId { fs: 12, ua: 160 },
                DesignId { fs: 25, ua: 179 },
            ],
            "mixed-a",
        ),
        chip(
            [
                DesignId { fs: 3, ua: 10 },
                DesignId { fs: 3, ua: 10 },
                DesignId { fs: 18, ua: 140 },
                DesignId { fs: 22, ua: 65 },
            ],
            "mixed-b",
        ),
    ];
    FleetSpec::from_chips(table, space, &designs, n_chips)
}

fn config() -> FleetConfig {
    FleetConfig {
        n_threads: 4_000,
        n_shards: 8,
        ..Default::default()
    }
}

/// Exact equality including float bits (`PartialEq` on the report
/// compares floats with `==`; a sign-of-zero flip would slip through,
/// so the JSON rendering is compared too).
fn assert_identical(a: &PolicyReport, b: &PolicyReport, what: &str) {
    assert_eq!(a, b, "{what}: reports differ");
    assert_eq!(
        a.total_work.to_bits(),
        b.total_work.to_bits(),
        "{what}: work bits"
    );
    assert_eq!(a.edp.to_bits(), b.edp.to_bits(), "{what}: edp bits");
    assert_eq!(
        a.p99_slowdown.to_bits(),
        b.p99_slowdown.to_bits(),
        "{what}: p99 bits"
    );
    assert_eq!(
        a.makespan_cycles.to_bits(),
        b.makespan_cycles.to_bits(),
        "{what}: makespan bits"
    );
}

#[test]
fn fleet_run_is_bit_identical_at_1_4_8_threads() {
    let (_, _, spec, mm) = fixtures();
    let cfg = config();
    let policies: [&dyn SchedulerPolicy; 3] = [&StaticRandom, &AffinityGreedy, &MigrationAware];
    for policy in policies {
        let r1 = simulate_fleet(spec, mm, policy, &cfg, &SweepRunner::new(1));
        let r4 = simulate_fleet(spec, mm, policy, &cfg, &SweepRunner::new(4));
        let r8 = simulate_fleet(spec, mm, policy, &cfg, &SweepRunner::new(8));
        assert_identical(&r1, &r4, &format!("{} 1v4", policy.name()));
        assert_identical(&r1, &r8, &format!("{} 1v8", policy.name()));
        assert_eq!(r1.arrivals, cfg.n_threads);
        assert_eq!(r1.completed, cfg.n_threads, "runs drain");
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let (_, _, spec, mm) = fixtures();
    let cfg = config();
    let runner = SweepRunner::new(4);
    let a = simulate_fleet(spec, mm, &MigrationAware, &cfg, &runner);
    let b = simulate_fleet(spec, mm, &MigrationAware, &cfg, &runner);
    assert_identical(&a, &b, "same-runner repeat");
}

#[test]
fn seed_changes_the_run() {
    let (_, _, spec, mm) = fixtures();
    let cfg = config();
    let runner = SweepRunner::new(4);
    let a = simulate_fleet(spec, mm, &AffinityGreedy, &cfg, &runner);
    let reseeded = FleetConfig {
        seed: cfg.seed ^ 0xDEAD,
        ..cfg
    };
    let b = simulate_fleet(spec, mm, &AffinityGreedy, &reseeded, &runner);
    assert_ne!(
        a.total_work.to_bits(),
        b.total_work.to_bits(),
        "different seeds must draw different streams"
    );
}

#[test]
fn policies_actually_differ() {
    let (_, _, spec, mm) = fixtures();
    let cfg = config();
    let runner = SweepRunner::new(4);
    let stat = simulate_fleet(spec, mm, &StaticRandom, &cfg, &runner);
    let greedy = simulate_fleet(spec, mm, &AffinityGreedy, &cfg, &runner);
    let aware = simulate_fleet(spec, mm, &MigrationAware, &cfg, &runner);
    assert_eq!(stat.migrations_total, 0, "static never migrates");
    assert!(
        greedy.migrations_total > 0,
        "affinity-greedy migrates sometimes"
    );
    assert!(aware.migrations_total > 0, "migration-aware migrates");
    assert!(
        aware.p99_slowdown <= stat.p99_slowdown,
        "migration-aware p99 {} must not exceed static {}",
        aware.p99_slowdown,
        stat.p99_slowdown
    );
}
