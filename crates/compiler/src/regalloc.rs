//! Linear-scan register allocation, sensitive to the target's register
//! depth (Section III, "Register Depth").
//!
//! The allocator:
//!
//! - computes live intervals from a proper backward liveness dataflow,
//! - allocates registers in prefix-cost priority order (registers that
//!   need no REX/REXBC prefix first, exactly as the paper's modified
//!   LLVM backend prioritizes cheap encodings),
//! - spills the furthest-ending interval under pressure, inserting
//!   stack stores after defs and loads before uses,
//! - **rematerializes** constants instead of spilling them (re-emitting
//!   the materialization before each use — the paper's explanation for
//!   increased integer/branch counts at shallow register depths).
//!
//! The stack pointer is `r4` (as in x86); spill code addresses
//! `[r4 + disp8]` with `Stack` locality, which downstream cache models
//! treat as extremely hot.

use std::collections::HashMap;

use cisa_isa::inst::{
    MachineInst, MacroOpcode, MemLocality, MemOperand, MemRole, Operand, PredicateAnnotation,
};
use cisa_isa::{ArchReg, FeatureSet};

use crate::ir::{Terminator, VReg};
use crate::isel::{VBlock, VFunction, VInst, VOp};

/// The stack-pointer register (x86's `rsp` is register 4).
pub fn stack_pointer() -> ArchReg {
    ArchReg::gpr(4)
}

/// Statistics from one allocation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegAllocStats {
    /// Virtual registers assigned to architectural registers.
    pub allocated: u32,
    /// Intervals spilled to stack slots.
    pub spilled: u32,
    /// Intervals rematerialized instead of spilled.
    pub rematerialized: u32,
    /// Profile-weighted spill stores inserted.
    pub dyn_spill_stores: f64,
    /// Profile-weighted refill loads inserted.
    pub dyn_refill_loads: f64,
    /// Profile-weighted rematerialization ops inserted.
    pub dyn_remat_ops: f64,
    /// Instructions whose spilled operands exceeded the scratch pool
    /// (modelled with scratch reuse; counted for diagnostics).
    pub scratch_overflows: u32,
}

/// An allocated block: final machine instructions plus dynamic weight.
#[derive(Debug, Clone)]
pub struct AllocBlock {
    /// Final machine instructions.
    pub insts: Vec<MachineInst>,
    /// Terminator (over block ids; the condition register is fully
    /// consumed by the compare that precedes the terminator).
    pub term: Terminator,
    /// Dynamic weight.
    pub weight: f64,
    /// Whether the block was vectorized.
    pub vectorized: bool,
}

/// Result of register allocation.
#[derive(Debug, Clone)]
pub struct AllocFunction {
    /// Source name.
    pub name: String,
    /// Allocated blocks.
    pub blocks: Vec<AllocBlock>,
    /// Statistics.
    pub stats: RegAllocStats,
    /// Every live interval and where it ended up, over the linearized
    /// instruction numbering — the post-regalloc verifier checks that
    /// no two overlapping intervals share a register.
    pub intervals: Vec<PlacedInterval>,
}

/// One live interval's placement: an architectural register, or `None`
/// when the interval was spilled (or rematerialized).
#[derive(Debug, Clone, Copy)]
pub struct PlacedInterval {
    /// The virtual register.
    pub vreg: VReg,
    /// Assigned architectural register, `None` if spilled.
    pub reg: Option<ArchReg>,
    /// First linearized instruction index covered.
    pub start: u32,
    /// Last linearized instruction index covered (inclusive).
    pub end: u32,
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VReg,
    start: u32,
    end: u32,
    weight: f64,
    remat_imm: Option<u8>,
}

/// How a spilled value is restored at uses.
#[derive(Debug, Clone, Copy)]
enum SpillKind {
    Stack,
    Remat(u8),
}

/// Allocates registers for a lowered function under the feature set's
/// register depth.
pub fn allocate(func: &VFunction, fs: &FeatureSet) -> AllocFunction {
    let depth = fs.depth().count() as u8;
    // Allocatable pool: all GPRs at this depth except the stack pointer,
    // cheapest encodings first (the natural index order already is).
    let pool: Vec<ArchReg> = (0..depth)
        .filter(|&i| i != stack_pointer().index())
        .map(ArchReg::gpr)
        .collect();

    // First attempt with the full pool; if spills occur we must reserve
    // scratch registers and retry.
    let intervals = build_intervals(func);
    let (assignment, spills) = scan(&intervals, pool.len());
    let reserve = if depth <= 8 { 2 } else { 3 };
    let scratch_count = if spills.is_empty() {
        0
    } else {
        reserve.min(pool.len().saturating_sub(1))
    };
    let (assignment, spills) = if scratch_count == 0 {
        (assignment, spills)
    } else {
        scan(&intervals, pool.len() - scratch_count)
    };

    // Scratch registers: the most expensive end of the pool.
    let scratch: Vec<ArchReg> = pool[pool.len() - scratch_count..].to_vec();
    let reg_of: HashMap<VReg, ArchReg> = assignment
        .iter()
        .map(|&(v, slot)| (v, pool[slot]))
        .collect();
    let spill_kind: HashMap<VReg, SpillKind> = spills
        .iter()
        .map(|&(v, remat)| {
            (
                v,
                match remat {
                    Some(w) => SpillKind::Remat(w),
                    None => SpillKind::Stack,
                },
            )
        })
        .collect();

    let mut stats = RegAllocStats {
        allocated: assignment.len() as u32,
        spilled: spills.iter().filter(|(_, r)| r.is_none()).count() as u32,
        rematerialized: spills.iter().filter(|(_, r)| r.is_some()).count() as u32,
        ..Default::default()
    };

    let mut blocks = Vec::with_capacity(func.blocks.len());
    for b in &func.blocks {
        blocks.push(rewrite_block(b, &reg_of, &spill_kind, &scratch, &mut stats));
    }

    let placed = intervals
        .iter()
        .map(|iv| PlacedInterval {
            vreg: iv.vreg,
            reg: reg_of.get(&iv.vreg).copied(),
            start: iv.start,
            end: iv.end,
        })
        .collect();

    AllocFunction {
        name: func.name.clone(),
        blocks,
        stats,
        intervals: placed,
    }
}

/// Builds live intervals over a linearized instruction numbering.
fn build_intervals(func: &VFunction) -> Vec<Interval> {
    let nblocks = func.blocks.len();
    // use/def per block.
    let mut gen: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    let mut kill: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    for (bi, b) in func.blocks.iter().enumerate() {
        let mut defined: Vec<VReg> = Vec::new();
        for inst in &b.insts {
            for u in inst.uses() {
                if !defined.contains(&u) && !gen[bi].contains(&u) {
                    gen[bi].push(u);
                }
            }
            if let Some(d) = inst.def() {
                if !defined.contains(&d) {
                    defined.push(d);
                }
            }
        }
        if let Terminator::Branch { cond, .. } = b.term {
            if !defined.contains(&cond) && !gen[bi].contains(&cond) {
                gen[bi].push(cond);
            }
        }
        kill[bi] = defined;
    }

    // Backward dataflow to a fixed point.
    let mut live_in: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    let mut live_out: Vec<Vec<VReg>> = vec![Vec::new(); nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nblocks).rev() {
            let mut out: Vec<VReg> = Vec::new();
            for s in func.blocks[bi].term.successors() {
                for &v in &live_in[s.idx()] {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            let mut inn = gen[bi].clone();
            for &v in &out {
                if !kill[bi].contains(&v) && !inn.contains(&v) {
                    inn.push(v);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
    }

    // Linear positions: block-major instruction numbering.
    let mut pos = 0u32;
    let mut ivs: HashMap<VReg, Interval> = HashMap::new();
    let touch = |v: VReg, p: u32, w: f64, remat: Option<u8>, ivs: &mut HashMap<VReg, Interval>| {
        let e = ivs.entry(v).or_insert(Interval {
            vreg: v,
            start: p,
            end: p,
            weight: 0.0,
            remat_imm: remat,
        });
        e.start = e.start.min(p);
        e.end = e.end.max(p);
        e.weight += w;
        if remat.is_none() && e.remat_imm.is_some() && ivs.get(&v).is_some() {
            // multiple defs: not rematerializable — handled below.
        }
    };
    // Track remat candidacy: single def that is a constant.
    let mut def_count: HashMap<VReg, u32> = HashMap::new();
    let mut remat_of: HashMap<VReg, u8> = HashMap::new();
    for b in &func.blocks {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_default() += 1;
                if let Some(w) = inst.remat_imm {
                    remat_of.insert(d, w);
                }
            }
        }
    }

    for (bi, b) in func.blocks.iter().enumerate() {
        let block_start = pos;
        for &v in &live_in[bi] {
            touch(v, block_start, 0.0, None, &mut ivs);
        }
        for inst in &b.insts {
            for u in inst.uses() {
                touch(u, pos, b.weight, None, &mut ivs);
            }
            if let Some(d) = inst.def() {
                touch(d, pos, b.weight, None, &mut ivs);
            }
            pos += 1;
        }
        if let Terminator::Branch { cond, .. } = b.term {
            touch(cond, pos, b.weight, None, &mut ivs);
        }
        pos += 1; // terminator slot
        let block_end = pos - 1;
        for &v in &live_out[bi] {
            touch(v, block_end, 0.0, None, &mut ivs);
        }
    }

    let mut out: Vec<Interval> = ivs
        .into_values()
        .map(|mut iv| {
            iv.remat_imm = match def_count.get(&iv.vreg) {
                Some(1) => remat_of.get(&iv.vreg).copied(),
                _ => None,
            };
            iv
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.end, iv.vreg.0));
    out
}

/// Vreg-to-pool-slot assignments.
type Assignments = Vec<(VReg, usize)>;
/// Spilled vregs with an optional rematerialization width.
type Spills = Vec<(VReg, Option<u8>)>;

/// Linear scan proper: returns `(assignments, spills)` where assignments
/// map vregs to pool slots and spills carry an optional remat width.
fn scan(intervals: &[Interval], k: usize) -> (Assignments, Spills) {
    let mut active: Vec<(u32, usize, VReg)> = Vec::new(); // (end, slot, vreg)
    let mut free: Vec<usize> = (0..k).rev().collect(); // pop() yields slot 0 first
    let mut assigned: Vec<(VReg, usize)> = Vec::new();
    let mut spilled: Vec<(VReg, Option<u8>)> = Vec::new();
    let mut slot_of: HashMap<VReg, usize> = HashMap::new();

    for iv in intervals {
        // Expire.
        active.retain(|&(end, slot, _)| {
            if end < iv.start {
                free.push(slot);
                false
            } else {
                true
            }
        });
        free.sort_unstable_by(|a, b| b.cmp(a)); // keep cheapest on top

        if let Some(slot) = free.pop() {
            active.push((iv.end, slot, iv.vreg));
            slot_of.insert(iv.vreg, slot);
            assigned.push((iv.vreg, slot));
        } else if k == 0 {
            spilled.push((iv.vreg, iv.remat_imm));
        } else {
            // Choose a victim among {active ∪ iv}: prefer to keep
            // heavily used (hot) intervals in registers, spilling the
            // coldest long-lived one — the effect a real allocator's
            // live-range splitting achieves.
            let weight_of = |v: VReg| -> f64 {
                intervals
                    .iter()
                    .find(|i| i.vreg == v)
                    .map(|i| i.weight)
                    .unwrap_or(0.0)
            };
            let (victim_idx, &(vend, vslot, vv)) = active
                .iter()
                .enumerate()
                .max_by(|(_, &(ea, _, va)), (_, &(eb, _, vb))| {
                    let sa = ea as f64 / (1.0 + weight_of(va));
                    let sb = eb as f64 / (1.0 + weight_of(vb));
                    sa.partial_cmp(&sb).expect("finite spill score")
                })
                .expect("active nonempty when k > 0");
            let victim_score = vend as f64 / (1.0 + weight_of(vv));
            let incoming_score = iv.end as f64 / (1.0 + iv.weight);
            if victim_score > incoming_score {
                // Evict the active interval; current takes its slot.
                active.remove(victim_idx);
                assigned.retain(|&(v, _)| v != vv);
                let remat = intervals
                    .iter()
                    .find(|i| i.vreg == vv)
                    .and_then(|i| i.remat_imm);
                spilled.push((vv, remat));
                active.push((iv.end, vslot, iv.vreg));
                slot_of.insert(iv.vreg, vslot);
                assigned.push((iv.vreg, vslot));
            } else {
                spilled.push((iv.vreg, iv.remat_imm));
            }
        }
    }
    (assigned, spilled)
}

/// Rewrites one block: maps virtual to architectural registers and
/// inserts spill/refill/remat code.
fn rewrite_block(
    b: &VBlock,
    reg_of: &HashMap<VReg, ArchReg>,
    spill_kind: &HashMap<VReg, SpillKind>,
    scratch: &[ArchReg],
    stats: &mut RegAllocStats,
) -> AllocBlock {
    let mut insts: Vec<MachineInst> = Vec::with_capacity(b.insts.len() * 2);
    // Block-local scratch residency: a spilled value refilled into a
    // scratch register stays usable until that scratch is recycled
    // (models the short live-range splits a real allocator creates,
    // instead of reloading on every single use).
    let mut resident: Vec<Option<VReg>> = vec![None; scratch.len()];
    let mut clock = 0usize;
    for vinst in &b.insts {
        let mut scratch_map: HashMap<VReg, ArchReg> = HashMap::new();
        // Slots already holding this instruction's operands are pinned.
        let spilled_uses: Vec<VReg> = vinst
            .uses()
            .filter(|v| spill_kind.contains_key(v))
            .collect();
        let mut pinned: Vec<usize> = Vec::new();
        for v in &spilled_uses {
            if let Some(slot) = resident.iter().position(|r| *r == Some(*v)) {
                scratch_map.insert(*v, scratch[slot]);
                pinned.push(slot);
            }
        }
        for v in spilled_uses {
            if scratch_map.contains_key(&v) {
                continue;
            }
            if scratch.is_empty() {
                stats.scratch_overflows += 1;
                continue;
            }
            // Round-robin over unpinned slots.
            let mut slot = clock % scratch.len();
            let mut guard = 0;
            while pinned.contains(&slot) && guard < scratch.len() {
                slot = (slot + 1) % scratch.len();
                guard += 1;
            }
            if pinned.len() >= scratch.len() {
                stats.scratch_overflows += 1;
            }
            clock = slot + 1;
            pinned.push(slot);
            resident[slot] = Some(v);
            let s = scratch[slot];
            scratch_map.insert(v, s);
            match spill_kind[&v] {
                SpillKind::Stack => {
                    insts.push(MachineInst::load(s, spill_mem()));
                    stats.dyn_refill_loads += b.weight;
                }
                SpillKind::Remat(w) => {
                    insts.push(MachineInst::compute(
                        MacroOpcode::Mov,
                        s,
                        Operand::Imm(w),
                        Operand::None,
                    ));
                    stats.dyn_remat_ops += b.weight;
                }
            }
        }
        // Destination spilled: compute into a scratch, store after.
        let dst_spill = vinst.dst.filter(|d| spill_kind.contains_key(d));
        let dst_scratch = dst_spill.map(|d| {
            if let Some(&s) = scratch_map.get(&d) {
                s
            } else if scratch.is_empty() {
                stats.scratch_overflows += 1;
                ArchReg::gpr(0)
            } else {
                let mut slot = clock % scratch.len();
                let mut guard = 0;
                while pinned.contains(&slot) && guard < scratch.len() {
                    slot = (slot + 1) % scratch.len();
                    guard += 1;
                }
                clock = slot + 1;
                resident[slot] = Some(d);
                let s = scratch[slot];
                scratch_map.insert(d, s);
                s
            }
        });

        let map = |v: VReg| -> ArchReg {
            scratch_map
                .get(&v)
                .or_else(|| reg_of.get(&v))
                .copied()
                .unwrap_or_else(|| scratch.first().copied().unwrap_or(ArchReg::gpr(0)))
        };

        let minst = lower_vinst(vinst, &map, dst_scratch);
        insts.push(minst);

        if let Some(d) = dst_spill {
            if matches!(spill_kind[&d], SpillKind::Stack) {
                insts.push(MachineInst::store(scratch_map[&d], spill_mem()));
                stats.dyn_spill_stores += b.weight;
            }
        }
    }
    AllocBlock {
        insts,
        term: b.term,
        weight: b.weight,
        vectorized: b.vectorized,
    }
}

fn spill_mem() -> MemOperand {
    MemOperand::base_disp(stack_pointer(), 1, MemLocality::Stack)
}

fn lower_vinst(
    v: &VInst,
    map: &impl Fn(VReg) -> ArchReg,
    dst_override: Option<ArchReg>,
) -> MachineInst {
    let conv = |o: VOp| -> Operand {
        match o {
            VOp::Reg(r) => Operand::Reg(map(r)),
            VOp::Imm(w) => Operand::Imm(w),
            VOp::None => Operand::None,
        }
    };
    let mem = v.mem.map(|m| MemOperand {
        mode: match (m.base, m.index) {
            (_, Some(_)) => cisa_isa::AddressingMode::BaseIndexScaleDisp,
            (_, None) if m.disp_bytes > 0 => cisa_isa::AddressingMode::BaseDisp,
            _ => cisa_isa::AddressingMode::BaseOnly,
        },
        base: m.base.map(map).unwrap_or_else(stack_pointer),
        index: m.index.map(map),
        disp_bytes: m.disp_bytes,
        locality: m.locality,
    });
    MachineInst {
        opcode: v.opcode,
        dst: dst_override.or(v.dst.map(map)),
        src1: conv(v.src1),
        src2: conv(v.src2),
        mem,
        mem_role: if mem.is_some() {
            v.mem_role
        } else {
            MemRole::None
        },
        wide: v.wide,
        predicate: v.pred.map(|(p, negated)| PredicateAnnotation {
            reg: map(p),
            negated,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AddrExpr, BlockId, BranchBehavior, IrBlock, IrFunction, IrInst, IrOp};
    use crate::isel::select;
    use cisa_isa::feature_set::{Complexity, Predication, RegisterDepth, RegisterWidth};

    fn fs_depth(d: RegisterDepth) -> FeatureSet {
        FeatureSet::new(
            Complexity::MicroX86,
            RegisterWidth::W32,
            d,
            Predication::Partial,
        )
        .unwrap()
    }

    /// A straight-line block with `n` simultaneously live values.
    fn pressure(n: u32) -> IrFunction {
        let mut f = IrFunction::new(format!("pressure{n}"));
        let base = f.new_vreg();
        let mut live = Vec::new();
        let mut b = IrBlock::new(Terminator::Ret, 100.0);
        for k in 0..n {
            let v = f.new_vreg();
            b.insts.push(IrInst::load(
                v,
                AddrExpr::base_disp(base, k as i32 * 8),
                cisa_isa::inst::MemLocality::WorkingSet,
            ));
            live.push(v);
        }
        // Consume all values at the end so they are simultaneously live.
        let mut acc = f.new_vreg();
        b.insts.push(IrInst::constant(acc, 1));
        for &v in &live {
            let nv = f.new_vreg();
            b.insts.push(IrInst::compute(IrOp::IntAlu, nv, acc, v));
            acc = nv;
        }
        f.add_block(b);
        f.validate().unwrap();
        f
    }

    #[test]
    fn no_spills_under_low_pressure() {
        let func = pressure(4);
        let v = select(&func, &fs_depth(RegisterDepth::D32));
        let a = allocate(&v, &fs_depth(RegisterDepth::D32));
        assert_eq!(a.stats.spilled, 0);
        assert_eq!(a.stats.dyn_spill_stores, 0.0);
    }

    #[test]
    fn shallow_depth_forces_spills() {
        let func = pressure(20);
        let v = select(&func, &fs_depth(RegisterDepth::D8));
        let a8 = allocate(&v, &fs_depth(RegisterDepth::D8));
        let a32 = allocate(
            &select(&func, &fs_depth(RegisterDepth::D32)),
            &fs_depth(RegisterDepth::D32),
        );
        assert!(a8.stats.spilled > 0, "depth 8 must spill 20 live values");
        assert!(a8.stats.dyn_refill_loads > a32.stats.dyn_refill_loads);
        assert_eq!(a32.stats.spilled, 0, "depth 32 holds 20 values");
    }

    #[test]
    fn spill_code_grows_monotonically_as_depth_shrinks() {
        let func = pressure(40);
        let mut prev = f64::INFINITY;
        for d in [
            RegisterDepth::D8,
            RegisterDepth::D16,
            RegisterDepth::D32,
            RegisterDepth::D64,
        ] {
            let fs = fs_depth(d);
            let a = allocate(&select(&func, &fs), &fs);
            let spill_traffic = a.stats.dyn_spill_stores + a.stats.dyn_refill_loads;
            assert!(
                spill_traffic <= prev + 1e-9,
                "depth {} should not spill more than shallower depths",
                d.count()
            );
            prev = spill_traffic;
        }
    }

    #[test]
    fn constants_rematerialize_not_spill() {
        // Many long-lived constants + pressure: allocator should remat.
        let mut f = IrFunction::new("consts");
        let mut b = IrBlock::new(Terminator::Ret, 10.0);
        let mut vals = Vec::new();
        for _ in 0..12 {
            let v = f.new_vreg();
            b.insts.push(IrInst::constant(v, 4));
            vals.push(v);
        }
        let mut acc = f.new_vreg();
        b.insts.push(IrInst::constant(acc, 1));
        for &v in &vals {
            let nv = f.new_vreg();
            b.insts.push(IrInst::compute(IrOp::IntAlu, nv, acc, v));
            acc = nv;
        }
        f.add_block(b);
        let fs = fs_depth(RegisterDepth::D8);
        let a = allocate(&select(&f, &fs), &fs);
        assert!(a.stats.rematerialized > 0, "constants should rematerialize");
        assert!(a.stats.dyn_remat_ops > 0.0);
    }

    #[test]
    fn spill_code_uses_stack_locality() {
        let func = pressure(30);
        let fs = fs_depth(RegisterDepth::D8);
        let a = allocate(&select(&func, &fs), &fs);
        let spill_ops: Vec<&MachineInst> = a.blocks[0]
            .insts
            .iter()
            .filter(|i| i.mem.is_some_and(|m| m.base == stack_pointer()))
            .collect();
        assert!(!spill_ops.is_empty());
        assert!(spill_ops
            .iter()
            .all(|i| i.mem.unwrap().locality == MemLocality::Stack));
    }

    #[test]
    fn all_registers_respect_depth() {
        for d in [
            RegisterDepth::D8,
            RegisterDepth::D16,
            RegisterDepth::D32,
            RegisterDepth::D64,
        ] {
            let fs = fs_depth(d);
            let func = pressure(24);
            let a = allocate(&select(&func, &fs), &fs);
            for blk in &a.blocks {
                for inst in &blk.insts {
                    for r in inst.registers() {
                        assert!(
                            r.available_in(&fs),
                            "register {r} out of depth {} range",
                            d.count()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn loop_carried_values_stay_live_across_back_edges() {
        // v defined before the loop and used inside it must keep its
        // register through the whole loop body.
        let mut f = IrFunction::new("loop");
        let v = f.new_vreg();
        let c = f.new_vreg();
        let mut pre = IrBlock::new(Terminator::Jump(BlockId(1)), 1.0);
        pre.insts.push(IrInst::constant(v, 4));
        f.add_block(pre);
        let mut body = IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::loop_back(50),
            },
            50.0,
        );
        body.insts.push(IrInst::compute(IrOp::IntAlu, c, v, v));
        f.add_block(body);
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        f.validate().unwrap();

        let fs = fs_depth(RegisterDepth::D16);
        let a = allocate(&select(&f, &fs), &fs);
        assert_eq!(a.stats.spilled, 0);
        // v's register in the loop body must match its def register.
        let def_reg = a.blocks[0].insts[0].dst.unwrap();
        let use_reg = a.blocks[1].insts[0].src1.reg().unwrap();
        assert_eq!(def_reg, use_reg);
    }

    #[test]
    fn overlapping_intervals_never_share_a_register() {
        // The fundamental allocator invariant, checked white-box on the
        // scan output: any two vregs assigned the same pool slot must
        // have disjoint live intervals.
        for n in [6u32, 14, 28, 40] {
            let func = pressure(n);
            for d in [RegisterDepth::D8, RegisterDepth::D16, RegisterDepth::D32] {
                let fs = fs_depth(d);
                let v = select(&func, &fs);
                let intervals = build_intervals(&v);
                let k = (d.count() as usize).saturating_sub(4); // sp + scratch
                let (assigned, _) = scan(&intervals, k.max(1));
                let iv_of = |vr: VReg| intervals.iter().find(|i| i.vreg == vr).unwrap();
                for (i, &(va, slot_a)) in assigned.iter().enumerate() {
                    for &(vb, slot_b) in assigned.iter().skip(i + 1) {
                        if slot_a != slot_b {
                            continue;
                        }
                        let (a, b) = (iv_of(va), iv_of(vb));
                        let overlap = a.start <= b.end && b.start <= a.end;
                        assert!(
                            !overlap,
                            "depth {}: {va:?} [{}..{}] and {vb:?} [{}..{}] share slot {slot_a}",
                            d.count(),
                            a.start,
                            a.end,
                            b.start,
                            b.end
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spilled_plus_assigned_covers_every_interval() {
        let func = pressure(30);
        let fs = fs_depth(RegisterDepth::D8);
        let v = select(&func, &fs);
        let intervals = build_intervals(&v);
        let (assigned, spilled) = scan(&intervals, 4);
        let mut seen: Vec<VReg> = assigned.iter().map(|&(v, _)| v).collect();
        seen.extend(spilled.iter().map(|&(v, _)| v));
        seen.sort();
        seen.dedup();
        assert_eq!(
            seen.len(),
            intervals.len(),
            "every interval is placed exactly once"
        );
    }

    #[test]
    fn predicates_are_mapped_to_architectural_registers() {
        let mut f = IrFunction::new("pred");
        let c = f.new_vreg();
        let x = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        b.insts.push(IrInst::compute(IrOp::Cmp, c, x, x));
        let mut i = IrInst::compute(IrOp::IntAlu, x, x, x);
        i.pred = Some((c, true));
        b.insts.push(i);
        f.add_block(b);
        let fs = FeatureSet::superset();
        let a = allocate(&select(&f, &fs), &fs);
        let pinst = a.blocks[0]
            .insts
            .iter()
            .find(|i| i.predicate.is_some())
            .unwrap();
        let p = pinst.predicate.unwrap();
        assert!(p.negated);
        assert!(p.reg.available_in(&fs));
    }
}
