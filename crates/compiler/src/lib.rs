//! # cisa-compiler: the superset-ISA compiler back end
//!
//! An LLVM-flavoured compiler back end for the composite-ISA superset of
//! the Composite-ISA Cores paper (HPCA 2019, Section IV). It lowers a
//! small mid-level [`ir`] to encoded superset-ISA machine code,
//! specializing along every customizable feature dimension:
//!
//! - **register depth** — linear-scan allocation with spills, refills
//!   and rematerialization; prefix-cost-aware register priority
//!   ([`regalloc`]),
//! - **register width** — 64-bit data double-pumped on 32-bit targets,
//! - **instruction complexity** — memory-operand folding for full x86 vs
//!   explicit load-compute-store for microx86 ([`isel`]),
//! - **predication** — diamond/triangle/simple if-conversion with
//!   profitability analysis ([`ifconvert`]),
//! - **SIMD** — packed SSE2 compilation of vectorizable loops with a
//!   scalarized fallback.
//!
//! The entry point is [`compile`]; [`compile_all_feature_sets`] produces
//! the 26 variants the design-space exploration consumes.

#![warn(missing_docs)]

pub mod cfg;
pub mod code;
pub mod driver;
pub mod ifconvert;
pub mod ir;
pub mod isel;
pub mod regalloc;
pub mod select_features;
pub mod verify;

pub use cfg::{is_reducible, natural_loops, Dominators, NaturalLoop};
pub use code::{CodeStats, CompiledBlock, CompiledCode};
pub use driver::{compile, compile_all_feature_sets, CompileError, CompileOptions};
pub use ifconvert::{IfConvertConfig, IfConvertStats};
pub use regalloc::RegAllocStats;
pub use select_features::{select_feature_set, FeatureChoice};
pub use verify::{VerifyError, VerifyLevel, VerifyPass};
