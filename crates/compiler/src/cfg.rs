//! Control-flow-graph analyses: dominator tree and natural-loop
//! detection.
//!
//! The if-conversion pass and the workload generator both reason about
//! loop structure; these analyses make the structure explicit and are
//! used to validate generated functions (every back edge must target a
//! block that dominates its source — i.e., the CFG is reducible).
//! The dominator construction is the Cooper-Harvey-Kennedy iterative
//! algorithm over a reverse-postorder traversal.

use crate::ir::{BlockId, IrFunction};

/// Dominator tree of an [`IrFunction`]'s CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// Immediate dominator per block (`idom[entry] == entry`);
    /// unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder of the reachable blocks.
    rpo: Vec<BlockId>,
}

impl Dominators {
    /// Computes dominators for a function.
    pub fn compute(func: &IrFunction) -> Self {
        let n = func.blocks.len();
        // Reverse postorder via iterative DFS.
        let mut visited = vec![false; n];
        let mut postorder: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = func.blocks[b.idx()].term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.idx()] {
                    visited[s.idx()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.idx()] = i;
        }

        let preds = func.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));

        let intersect =
            |idom: &[Option<BlockId>], rpo_index: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo_index[a.idx()] > rpo_index[b.idx()] {
                        a = idom[a.idx()].expect("processed");
                    }
                    while rpo_index[b.idx()] > rpo_index[a.idx()] {
                        b = idom[b.idx()].expect("processed");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.idx()] {
                    if idom[p.idx()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.idx()] != new_idom {
                    idom[b.idx()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo }
    }

    /// The immediate dominator of `b` (entry's idom is itself);
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.idx()).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Reverse postorder of the reachable blocks.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom(b).is_some()
    }
}

/// A natural loop: a back edge `latch -> header` where the header
/// dominates the latch, plus every block that can reach the latch
/// without passing through the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// The latch (source of the back edge).
    pub latch: BlockId,
    /// All member blocks (header included), sorted by id.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// Number of blocks in the loop.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the loop body is empty (never: it contains the header).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Whether a block belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// Finds all natural loops; returns them sorted by header id.
///
/// Back edges whose target does *not* dominate their source (irreducible
/// control flow) are skipped.
pub fn natural_loops(func: &IrFunction, dom: &Dominators) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for (i, b) in func.blocks.iter().enumerate() {
        let latch = BlockId(i as u32);
        if !dom.reachable(latch) {
            continue;
        }
        for header in b.term.successors() {
            if !dom.dominates(header, latch) {
                continue;
            }
            // Collect the body: backwards from the latch to the header.
            let preds = func.predecessors();
            let mut body = vec![header];
            let mut stack = vec![latch];
            while let Some(x) = stack.pop() {
                if body.contains(&x) {
                    continue;
                }
                body.push(x);
                for &p in &preds[x.idx()] {
                    if dom.reachable(p) {
                        stack.push(p);
                    }
                }
            }
            body.sort();
            loops.push(NaturalLoop {
                header,
                latch,
                body,
            });
        }
    }
    loops.sort_by_key(|l| (l.header, l.latch));
    loops
}

/// Validates that every back edge in the function is a natural-loop
/// back edge (the CFG is reducible) — true by construction for the
/// workload generator's output.
pub fn is_reducible(func: &IrFunction) -> bool {
    let dom = Dominators::compute(func);
    for (i, b) in func.blocks.iter().enumerate() {
        let src = BlockId(i as u32);
        if !dom.reachable(src) {
            continue;
        }
        for s in b.term.successors() {
            // A retreating edge in RPO must be a dominator back edge.
            let rpo = dom.reverse_postorder();
            let pos = |x: BlockId| rpo.iter().position(|&y| y == x);
            if let (Some(ps), Some(pt)) = (pos(src), pos(s)) {
                if pt <= ps && !dom.dominates(s, src) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BranchBehavior, IrBlock, Terminator};

    /// entry(0) -> loop head(1) -> body(2) -> latch(3) -> head | exit(4)
    fn loopy() -> IrFunction {
        let mut f = IrFunction::new("loopy");
        let c = f.new_vreg();
        f.add_block(IrBlock::new(Terminator::Jump(BlockId(1)), 1.0)); // 0
        f.add_block(IrBlock::new(Terminator::Jump(BlockId(2)), 10.0)); // 1
        f.add_block(IrBlock::new(Terminator::Jump(BlockId(3)), 10.0)); // 2
        f.add_block(IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(1),
                not_taken: BlockId(4),
                behavior: BranchBehavior::loop_back(10),
            },
            10.0,
        )); // 3
        f.add_block(IrBlock::new(Terminator::Ret, 1.0)); // 4
        f.validate().unwrap();
        f
    }

    #[test]
    fn dominators_of_a_simple_loop() {
        let f = loopy();
        let dom = Dominators::compute(&f);
        assert_eq!(dom.idom(BlockId(0)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(2)));
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(3)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
        assert!(dom.dominates(BlockId(0), BlockId(4)));
    }

    #[test]
    fn natural_loop_detection() {
        let f = loopy();
        let dom = Dominators::compute(&f);
        let loops = natural_loops(&f, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(3));
        assert_eq!(l.body, vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(4)));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn diamond_has_no_loops() {
        let mut f = IrFunction::new("diamond");
        let c = f.new_vreg();
        f.add_block(IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::biased(0.5),
            },
            1.0,
        ));
        f.add_block(IrBlock::new(Terminator::Jump(BlockId(3)), 0.5));
        f.add_block(IrBlock::new(Terminator::Jump(BlockId(3)), 0.5));
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        let dom = Dominators::compute(&f);
        assert!(natural_loops(&f, &dom).is_empty());
        // Join dominated by entry only.
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(is_reducible(&f));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = IrFunction::new("unreachable");
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        f.add_block(IrBlock::new(Terminator::Ret, 0.0)); // unreachable
        let dom = Dominators::compute(&f);
        assert!(dom.reachable(BlockId(0)));
        assert!(!dom.reachable(BlockId(1)));
        assert_eq!(dom.idom(BlockId(1)), None);
    }

    #[test]
    fn every_generated_phase_is_reducible() {
        for spec in cisa_workloads_stub::all_phase_like() {
            assert!(is_reducible(&spec), "generated CFGs must be reducible");
        }
    }

    /// The workloads crate depends on this one, so tests here build a
    /// few generator-shaped functions locally instead.
    mod cisa_workloads_stub {
        use super::super::*;
        use crate::ir::{BranchBehavior, IrBlock, Terminator};

        pub fn all_phase_like() -> Vec<IrFunction> {
            // Nested loop with an inner diamond, mirroring the
            // generator's shape.
            let mut f = IrFunction::new("shape");
            let c = f.new_vreg();
            f.add_block(IrBlock::new(Terminator::Jump(BlockId(1)), 1.0)); // pre
            f.add_block(IrBlock::new(
                Terminator::Branch {
                    cond: c,
                    taken: BlockId(2),
                    not_taken: BlockId(3),
                    behavior: BranchBehavior::random(0.5),
                },
                100.0,
            )); // header + diamond entry
            f.add_block(IrBlock::new(Terminator::Jump(BlockId(4)), 50.0)); // t
            f.add_block(IrBlock::new(Terminator::Jump(BlockId(4)), 50.0)); // f
            f.add_block(IrBlock::new(
                Terminator::Branch {
                    cond: c,
                    taken: BlockId(1),
                    not_taken: BlockId(5),
                    behavior: BranchBehavior::loop_back(100),
                },
                100.0,
            )); // latch
            f.add_block(IrBlock::new(Terminator::Ret, 1.0));
            f.validate().unwrap();
            vec![f]
        }
    }
}
