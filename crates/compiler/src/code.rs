//! Final compiled code and its statistics.
//!
//! [`CompiledCode`] is what the rest of the system consumes: encoded
//! machine code per block, profile weights, branch behaviour for the
//! predictor models, and the [`CodeStats`] that reproduce the paper's
//! Section III code-generation numbers (Figure 2).

use std::collections::HashMap;

use cisa_isa::inst::MachineInst;
use cisa_isa::uop::MicroOpKind;
use cisa_isa::{Encoder, FeatureSet, MacroOpcode};

use crate::ifconvert::IfConvertStats;
use crate::ir::Terminator;
use crate::regalloc::RegAllocStats;

/// A compiled basic block.
#[derive(Debug, Clone)]
pub struct CompiledBlock {
    /// Machine instructions (architectural registers, spill code
    /// included). The terminator is *not* in this list.
    pub insts: Vec<MachineInst>,
    /// Terminator, still carrying the branch behaviour annotation.
    pub term: Terminator,
    /// Dynamic weight (executions per phase unit; vectorized blocks are
    /// pre-scaled).
    pub weight: f64,
    /// Whether the block compiled to packed SIMD.
    pub vectorized: bool,
    /// Static encoded size of the block in bytes (terminator included).
    pub code_bytes: usize,
}

/// Dynamic (profile-weighted) and static statistics of compiled code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeStats {
    /// Dynamic micro-op counts by kind.
    pub uops: HashMap<MicroOpKind, f64>,
    /// Dynamic macro-op count (terminators included).
    pub macro_ops: f64,
    /// Static code size in bytes.
    pub code_bytes: usize,
    /// Dynamic average macro-op encoded length in bytes.
    pub avg_inst_bytes: f64,
    /// Dynamic count of fully predicated instructions.
    pub predicated: f64,
    /// Register-allocation outcome.
    pub regalloc: RegAllocStats,
    /// If-conversion outcome.
    pub ifconvert: IfConvertStats,
}

impl CodeStats {
    /// Total dynamic micro-ops. Summed in a fixed kind order so the
    /// result is bit-deterministic (HashMap iteration order is not).
    pub fn total_uops(&self) -> f64 {
        cisa_isa::uop::MicroOpKind::ALL
            .iter()
            .map(|k| self.uop(*k))
            .sum()
    }

    /// Dynamic count for one micro-op kind.
    pub fn uop(&self, kind: MicroOpKind) -> f64 {
        self.uops.get(&kind).copied().unwrap_or(0.0)
    }

    /// Dynamic loads.
    pub fn loads(&self) -> f64 {
        self.uop(MicroOpKind::Load)
    }

    /// Dynamic stores.
    pub fn stores(&self) -> f64 {
        self.uop(MicroOpKind::Store)
    }

    /// Dynamic memory references (loads + stores).
    pub fn mem_refs(&self) -> f64 {
        self.loads() + self.stores()
    }

    /// Dynamic integer ALU ops (the paper's "integer instructions").
    pub fn int_ops(&self) -> f64 {
        self.uop(MicroOpKind::IntAlu) + self.uop(MicroOpKind::IntMul)
    }

    /// Dynamic conditional branches.
    pub fn branches(&self) -> f64 {
        self.uop(MicroOpKind::Branch)
    }

    /// Dynamic FP + SIMD ops.
    pub fn fp_vec_ops(&self) -> f64 {
        self.uop(MicroOpKind::FpAlu) + self.uop(MicroOpKind::FpMul) + self.uop(MicroOpKind::VecAlu)
    }
}

/// Compiled code for one (phase, feature set) pair.
#[derive(Debug, Clone)]
pub struct CompiledCode {
    /// Source function name.
    pub name: String,
    /// Target feature set.
    pub fs: FeatureSet,
    /// Blocks (ids match the source IR).
    pub blocks: Vec<CompiledBlock>,
    /// Statistics.
    pub stats: CodeStats,
}

impl CompiledCode {
    /// Dynamic instructions per block-weight unit; convenience for
    /// normalization.
    pub fn dynamic_uops(&self) -> f64 {
        self.stats.total_uops()
    }
}

/// The machine instruction a terminator encodes as.
pub fn terminator_inst(term: &Terminator) -> Option<MachineInst> {
    match term {
        Terminator::Branch { .. } => Some(MachineInst::branch()),
        Terminator::Jump(_) => Some(MachineInst::jump()),
        Terminator::Ret => Some(MachineInst {
            opcode: MacroOpcode::Ret,
            ..MachineInst::jump()
        }),
    }
}

/// Computes [`CodeStats`] and per-block byte sizes for allocated blocks;
/// used by the compile driver.
pub(crate) fn finalize(
    name: String,
    fs: FeatureSet,
    blocks: Vec<(Vec<MachineInst>, Terminator, f64, bool)>,
    regalloc: RegAllocStats,
    ifconvert: IfConvertStats,
) -> CompiledCode {
    let encoder = Encoder::new(fs);
    let mut stats = CodeStats {
        regalloc,
        ifconvert,
        ..Default::default()
    };
    let mut weighted_bytes = 0.0f64;
    let mut out_blocks = Vec::with_capacity(blocks.len());

    for (insts, term, weight, vectorized) in blocks {
        let mut block_bytes = 0usize;
        for inst in &insts {
            let enc_len = encoder
                .encode(inst)
                .map(|e| e.len())
                .unwrap_or_else(|_| fallback_len(inst));
            block_bytes += enc_len;
            weighted_bytes += weight * enc_len as f64;
            stats.macro_ops += weight;
            if inst.predicate.is_some() {
                stats.predicated += weight;
            }
            for uop in inst.micro_ops() {
                *stats.uops.entry(uop.kind).or_default() += weight;
            }
        }
        if let Some(tinst) = terminator_inst(&term) {
            let enc_len = encoder
                .encode(&tinst)
                .map(|e| e.len())
                .unwrap_or_else(|_| fallback_len(&tinst));
            block_bytes += enc_len;
            weighted_bytes += weight * enc_len as f64;
            stats.macro_ops += weight;
            for uop in tinst.micro_ops() {
                *stats.uops.entry(uop.kind).or_default() += weight;
            }
        }
        stats.code_bytes += block_bytes;
        out_blocks.push(CompiledBlock {
            insts,
            term,
            weight,
            vectorized,
            code_bytes: block_bytes,
        });
    }
    stats.avg_inst_bytes = if stats.macro_ops > 0.0 {
        weighted_bytes / stats.macro_ops
    } else {
        0.0
    };
    CompiledCode {
        name,
        fs,
        blocks: out_blocks,
        stats,
    }
}

/// Conservative length estimate for the rare instruction the encoder
/// rejects (should not happen for driver-produced code; kept total
/// rather than panicking inside large sweeps).
fn fallback_len(inst: &MachineInst) -> usize {
    4 + inst.mem.map_or(0, |m| 1 + m.disp_bytes as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisa_isa::inst::{MemLocality, MemOperand, Operand};
    use cisa_isa::ArchReg;

    #[test]
    fn stats_accumulate_weighted_uops() {
        let fs = FeatureSet::x86_64();
        let insts = vec![
            MachineInst::load(
                ArchReg::gpr(1),
                MemOperand::base_only(ArchReg::gpr(2), MemLocality::Stream),
            ),
            MachineInst::compute(
                MacroOpcode::IntAlu,
                ArchReg::gpr(1),
                Operand::Reg(ArchReg::gpr(1)),
                Operand::None,
            ),
        ];
        let code = finalize(
            "t".into(),
            fs,
            vec![(insts, Terminator::Ret, 10.0, false)],
            RegAllocStats::default(),
            IfConvertStats::default(),
        );
        assert!(
            (code.stats.loads() - 20.0).abs() < 1e-9,
            "load + ret's pop, both x10"
        );
        assert!((code.stats.uop(MicroOpKind::IntAlu) - 10.0).abs() < 1e-9);
        // macro: load + alu + ret = 3, x10.
        assert!((code.stats.macro_ops - 30.0).abs() < 1e-9);
        assert!(code.stats.code_bytes > 0);
        assert!(code.stats.avg_inst_bytes > 1.0);
    }

    #[test]
    fn mem_refs_sums_loads_and_stores() {
        let mut s = CodeStats::default();
        s.uops.insert(MicroOpKind::Load, 3.0);
        s.uops.insert(MicroOpKind::Store, 2.0);
        assert_eq!(s.mem_refs(), 5.0);
        assert_eq!(s.total_uops(), 5.0);
    }

    #[test]
    fn terminator_insts() {
        assert!(terminator_inst(&Terminator::Ret).is_some());
        assert!(matches!(
            terminator_inst(&Terminator::Jump(crate::ir::BlockId(0)))
                .unwrap()
                .opcode,
            MacroOpcode::Jump
        ));
    }
}
