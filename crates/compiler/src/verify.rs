//! Staged static verification of the compile pipeline — the repo's
//! analogue of LLVM's MachineVerifier.
//!
//! The paper's argument rests on one invariant: code compiled for a
//! composite feature set contains only instructions that feature set can
//! execute. Nothing in the pipeline is trusted to uphold that on its
//! own; instead a rule-based checker runs after each phase:
//!
//! 1. [`verify_ir`] — IR/CFG well-formedness (operands in range,
//!    terminator discipline, def-before-use over a forward may-reach
//!    dataflow, double defs, unreachable blocks carrying weight),
//! 2. [`verify_predication`] — post-if-conversion predication legality
//!    (guards never clobbered or self-defined inside a predicated run),
//! 3. [`verify_isel`] — post-selection operand shape per opcode, the
//!    microx86 load-compute-store split, SIMD/width legality,
//! 4. [`verify_regalloc`] — no two overlapping live intervals share a
//!    register, spill-slot shape and store/refill pairing, register
//!    depth, spill statistics consistency,
//! 5. [`verify_encoding`] — every emitted instruction legal under the
//!    target feature set and the encoded stream decoding back
//!    bit-identically.
//!
//! Violations are collected as structured [`VerifyError`] diagnostics,
//! never panics. The driver runs the whole ladder behind a
//! [`VerifyLevel`] knob: `Full` by default in debug builds and tests,
//! `Off` in release so the sweep hot path pays nothing. Every rule name
//! in [`RULES`] has a dedicated firing test in the `cisa-verify` crate.

use std::collections::HashMap;
use std::fmt;

use cisa_isa::inst::{MacroOpcode, MemRole};
use cisa_isa::{
    AddressingMode, Complexity, Encoder, FeatureSet, InstLengthDecoder, MachineInst, MemLocality,
    Predication, RegisterWidth, SimdSupport,
};

use crate::code::{terminator_inst, CompiledCode};
use crate::ir::{IrFunction, Terminator, VReg};
use crate::isel::{VFunction, VOp};
use crate::regalloc::{stack_pointer, AllocFunction};

/// Which pipeline stage a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyPass {
    /// IR/CFG well-formedness (input IR and post-if-conversion IR).
    Ir,
    /// Predication legality after if-conversion.
    IfConvert,
    /// Operand legality after instruction selection.
    Isel,
    /// Post-register-allocation checks.
    RegAlloc,
    /// Feature-set legality + encode/decode round-trip of final code.
    Encoding,
    /// Migration safety (downgrade emulation), checked in `cisa-verify`.
    Migration,
}

impl fmt::Display for VerifyPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerifyPass::Ir => "ir",
            VerifyPass::IfConvert => "ifconvert",
            VerifyPass::Isel => "isel",
            VerifyPass::RegAlloc => "regalloc",
            VerifyPass::Encoding => "encoding",
            VerifyPass::Migration => "migration",
        })
    }
}

/// One structured verification diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Stage that found the violation.
    pub pass: VerifyPass,
    /// Function under verification.
    pub function: String,
    /// Block index, when the violation is block-local.
    pub block: Option<usize>,
    /// Instruction index within the block, when instruction-local.
    pub inst_index: Option<usize>,
    /// Stable rule name (one of [`RULES`], or a migration rule).
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.pass, self.function)?;
        if let Some(b) = self.block {
            write!(f, " bb{b}")?;
        }
        if let Some(i) = self.inst_index {
            write!(f, " #{i}")?;
        }
        write!(f, ": {} — {}", self.rule, self.detail)
    }
}

/// How much verification the driver runs per compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyLevel {
    /// No verification (the release sweep hot path).
    Off,
    /// Every pass after every stage.
    Full,
}

impl Default for VerifyLevel {
    /// `Full` in debug builds and tests, `Off` in release.
    fn default() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Full
        } else {
            VerifyLevel::Off
        }
    }
}

impl VerifyLevel {
    /// Whether any verification runs.
    pub fn enabled(self) -> bool {
        self == VerifyLevel::Full
    }
}

/// Every rule the compiler-side passes can fire. The `cisa-verify`
/// mutation suite asserts each one fires on a crafted violation.
pub const RULES: &[&str] = &[
    // verify_ir
    "empty-function",
    "terminator-target-out-of-range",
    "operand-out-of-range",
    "negative-block-weight",
    "mem-op-missing-addr",
    "no-reachable-ret",
    "use-before-def",
    "double-def",
    "unreachable-weighted-block",
    // verify_predication
    "predicated-op-under-partial-predication",
    "predicated-def-of-own-guard",
    "predicate-guard-redefined-in-run",
    // verify_isel
    "vreg-out-of-range",
    "control-opcode-in-block",
    "load-store-shape",
    "mem-role-inconsistent",
    "unsplit-mem-op-under-microx86",
    "vector-op-without-simd",
    "vector-op-outside-vectorized-block",
    "wide-op-on-32bit-target",
    "predicate-under-partial-predication",
    // verify_regalloc
    "register-beyond-depth",
    "overlapping-intervals-share-register",
    "spill-slot-shape",
    "spill-store-unpaired",
    "refill-load-unused",
    "regalloc-stats-mismatch",
    // verify_encoding
    "illegal-instruction-for-feature-set",
    "encode-failed",
    "stream-decode-error",
    "stream-roundtrip-mismatch",
    "block-bytes-mismatch",
    "stats-code-bytes-mismatch",
];

fn err(
    pass: VerifyPass,
    function: &str,
    block: Option<usize>,
    inst_index: Option<usize>,
    rule: &'static str,
    detail: String,
) -> VerifyError {
    VerifyError {
        pass,
        function: function.to_string(),
        block,
        inst_index,
        rule,
        detail,
    }
}

/// Pass 1: IR/CFG well-formedness.
///
/// Structural rules run first and short-circuit the dataflow rules, so a
/// function with out-of-range operands never indexes out of bounds here.
/// The IR is not SSA: virtual registers with no definition anywhere are
/// implicit parameters (exempt from def-before-use), and a use is
/// accepted if a definition MAY reach it along some path — including
/// loop back edges, which carry latch definitions to the loop header.
pub fn verify_ir(func: &IrFunction) -> Vec<VerifyError> {
    let p = VerifyPass::Ir;
    let name = func.name.as_str();
    let mut errors = Vec::new();
    if func.blocks.is_empty() {
        errors.push(err(
            p,
            name,
            None,
            None,
            "empty-function",
            "function has no blocks".into(),
        ));
        return errors;
    }
    let nblocks = func.blocks.len();
    let nvregs = func.vreg_count;

    // Structural checks.
    for (bi, b) in func.blocks.iter().enumerate() {
        if !b.weight.is_finite() || b.weight < 0.0 {
            errors.push(err(
                p,
                name,
                Some(bi),
                None,
                "negative-block-weight",
                format!(
                    "block weight {} is not a finite nonnegative value",
                    b.weight
                ),
            ));
        }
        for s in b.term.successors() {
            if s.idx() >= nblocks {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    None,
                    "terminator-target-out-of-range",
                    format!("terminator targets {s} but the function has {nblocks} blocks"),
                ));
            }
        }
        if let Terminator::Branch { cond, .. } = b.term {
            if cond.0 >= nvregs {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    None,
                    "operand-out-of-range",
                    format!("branch condition {cond} outside vreg_count {nvregs}"),
                ));
            }
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            for v in inst.uses().chain(inst.def()) {
                if v.0 >= nvregs {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "operand-out-of-range",
                        format!("operand {v} outside vreg_count {nvregs}"),
                    ));
                }
            }
            if inst.is_mem() && inst.addr.is_none() {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "mem-op-missing-addr",
                    format!("{:?} has no address expression", inst.op),
                ));
            }
        }
    }
    if !errors.is_empty() {
        return errors;
    }

    // Reachability from the entry block.
    let mut reachable = vec![false; nblocks];
    let mut stack = vec![0usize];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in func.blocks[b].term.successors() {
            if !reachable[s.idx()] {
                reachable[s.idx()] = true;
                stack.push(s.idx());
            }
        }
    }
    if !func
        .blocks
        .iter()
        .enumerate()
        .any(|(bi, b)| reachable[bi] && matches!(b.term, Terminator::Ret))
    {
        errors.push(err(
            p,
            name,
            None,
            None,
            "no-reachable-ret",
            "no return is reachable from the entry block".into(),
        ));
    }
    for (bi, b) in func.blocks.iter().enumerate() {
        if !reachable[bi] && b.weight > 0.0 {
            errors.push(err(
                p,
                name,
                Some(bi),
                None,
                "unreachable-weighted-block",
                format!("unreachable block carries weight {}", b.weight),
            ));
        }
    }

    // Forward may-reach definition dataflow. Virtual registers that are
    // never defined are implicit parameters and exempt.
    let mut def_count = vec![0u32; nvregs as usize];
    let mut defs: Vec<Vec<bool>> = vec![vec![false; nvregs as usize]; nblocks];
    for (bi, b) in func.blocks.iter().enumerate() {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                def_count[d.0 as usize] += 1;
                defs[bi][d.0 as usize] = true;
            }
        }
    }
    let preds = func.predecessors();
    let mut out: Vec<Vec<bool>> = defs.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nblocks {
            for pi in &preds[bi] {
                let pred_row = out[pi.idx()].clone();
                for (dst, src) in out[bi].iter_mut().zip(pred_row) {
                    if src && !*dst {
                        *dst = true;
                        changed = true;
                    }
                }
            }
        }
    }

    for (bi, b) in func.blocks.iter().enumerate() {
        if !reachable[bi] {
            continue;
        }
        // Definitions reaching the block entry.
        let mut live = vec![false; nvregs as usize];
        for pi in &preds[bi] {
            for v in 0..nvregs as usize {
                live[v] |= out[pi.idx()][v];
            }
        }
        // Unconsumed unpredicated definitions, for the double-def rule.
        let mut pending: HashMap<VReg, usize> = HashMap::new();
        for (ii, inst) in b.insts.iter().enumerate() {
            for u in inst.uses() {
                pending.remove(&u);
                if def_count[u.0 as usize] > 0 && !live[u.0 as usize] {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "use-before-def",
                        format!("{u} is used before any definition can reach"),
                    ));
                    live[u.0 as usize] = true; // report once
                }
            }
            if let Some(d) = inst.def() {
                if inst.pred.is_none() {
                    if let Some(prev) = pending.insert(d, ii) {
                        errors.push(err(
                            p,
                            name,
                            Some(bi),
                            Some(ii),
                            "double-def",
                            format!("{d} already defined at #{prev} with no intervening use"),
                        ));
                    }
                } else {
                    // A predicated def only conditionally overwrites;
                    // complementary-arm defs of one value are legal.
                    pending.remove(&d);
                }
                live[d.0 as usize] = true;
            }
        }
        if let Terminator::Branch { cond, .. } = b.term {
            if def_count[cond.0 as usize] > 0 && !live[cond.0 as usize] {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    None,
                    "use-before-def",
                    format!("branch condition {cond} is used before any definition can reach"),
                ));
            }
        }
    }
    errors
}

/// Pass 4 (runs on post-if-conversion IR): predication legality.
///
/// Predicated operations are only legal under full predication; inside a
/// block, a predicated instruction must not define its own guard, and
/// its guard's most recent in-block definition must itself be
/// unpredicated (side-effect safety of hoisted diamond/triangle arms).
pub fn verify_predication(func: &IrFunction, fs: &FeatureSet) -> Vec<VerifyError> {
    let p = VerifyPass::IfConvert;
    let name = func.name.as_str();
    let mut errors = Vec::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        // Was the most recent in-block def of a vreg predicated?
        let mut last_def_predicated: HashMap<VReg, bool> = HashMap::new();
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Some((guard, _)) = inst.pred {
                if fs.predication() != Predication::Full {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "predicated-op-under-partial-predication",
                        format!(
                            "{:?} is predicated but {fs} has partial predication",
                            inst.op
                        ),
                    ));
                }
                if inst.def() == Some(guard) {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "predicated-def-of-own-guard",
                        format!("instruction guarded by {guard} also defines it"),
                    ));
                }
                if last_def_predicated.get(&guard) == Some(&true) {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "predicate-guard-redefined-in-run",
                        format!("guard {guard} was last defined by a predicated instruction"),
                    ));
                }
            }
            if let Some(d) = inst.def() {
                last_def_predicated.insert(d, inst.pred.is_some());
            }
        }
    }
    errors
}

/// Pass 2: post-instruction-selection operand legality.
///
/// Checks operand shape per opcode (loads define, stores don't, memory
/// operands and roles agree), that the microx86 load-compute-store split
/// actually happened when folding is disabled, and that SIMD, width and
/// predication selections respect the target feature set.
pub fn verify_isel(func: &VFunction, fs: &FeatureSet) -> Vec<VerifyError> {
    let p = VerifyPass::Isel;
    let name = func.name.as_str();
    let mut errors = Vec::new();
    for (bi, b) in func.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            for v in inst.uses().chain(inst.def()) {
                if v.0 >= func.vreg_count {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "vreg-out-of-range",
                        format!("{v} outside vreg_count {}", func.vreg_count),
                    ));
                }
            }
            if matches!(
                inst.opcode,
                MacroOpcode::Branch
                    | MacroOpcode::Jump
                    | MacroOpcode::Call
                    | MacroOpcode::Ret
                    | MacroOpcode::Nop
            ) {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "control-opcode-in-block",
                    format!("{:?} may only appear as a terminator", inst.opcode),
                ));
                continue;
            }
            match inst.opcode {
                MacroOpcode::Load => {
                    let ok = inst.dst.is_some()
                        && inst.mem.is_some()
                        && inst.mem_role == MemRole::Src
                        && inst.src1 == VOp::None
                        && inst.src2 == VOp::None;
                    if !ok {
                        errors.push(err(
                            p,
                            name,
                            Some(bi),
                            Some(ii),
                            "load-store-shape",
                            "load must be `dst = [mem]` with role Src and no sources".into(),
                        ));
                    }
                }
                MacroOpcode::Store => {
                    let ok = inst.dst.is_none()
                        && inst.mem.is_some()
                        && inst.mem_role == MemRole::Dst
                        && matches!(inst.src1, VOp::Reg(_))
                        && inst.src2 == VOp::None;
                    if !ok {
                        errors.push(err(
                            p,
                            name,
                            Some(bi),
                            Some(ii),
                            "load-store-shape",
                            "store must be `[mem] = src1` with role Dst and no destination".into(),
                        ));
                    }
                }
                _ => {}
            }
            if inst.mem.is_some() != (inst.mem_role != MemRole::None) {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "mem-role-inconsistent",
                    format!(
                        "memory operand present: {}, role: {:?}",
                        inst.mem.is_some(),
                        inst.mem_role
                    ),
                ));
            }
            if fs.complexity() == Complexity::MicroX86 && inst.uop_count() > 1 {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "unsplit-mem-op-under-microx86",
                    format!(
                        "{:?} decodes to {} uops; microx86 requires the \
                         load-compute-store split at selection time",
                        inst.opcode,
                        inst.uop_count()
                    ),
                ));
            }
            if inst.opcode == MacroOpcode::VecAlu {
                if fs.simd() != SimdSupport::Sse {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "vector-op-without-simd",
                        format!("vector op selected but {fs} has no SIMD"),
                    ));
                }
                if !b.vectorized {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "vector-op-outside-vectorized-block",
                        "vector op in a block not marked vectorized".into(),
                    ));
                }
            }
            if inst.wide && fs.width() == RegisterWidth::W32 {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "wide-op-on-32bit-target",
                    "64-bit op must be double-pumped on a 32-bit target".into(),
                ));
            }
            if inst.pred.is_some() && fs.predication() != Predication::Full {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "predicate-under-partial-predication",
                    format!("predicated instruction selected for {fs}"),
                ));
            }
        }
    }
    errors
}

/// Whether a memory operand addresses the spill area (stack-pointer
/// based — the allocator never hands `r4` to program values).
fn is_spill_mem(inst: &MachineInst) -> bool {
    inst.mem
        .is_some_and(|m| m.base == stack_pointer() && !matches!(m.mode, AddressingMode::Absolute))
}

/// Pass 3: post-register-allocation checks.
///
/// No two overlapping live intervals may share a physical register
/// (checked against the placement side table the allocator records);
/// every register must fit the feature set's depth; spill-slot accesses
/// must have the canonical `[sp + disp8]` stack shape, spill stores must
/// immediately follow the def they save, refill loads must be consumed;
/// the dynamic spill statistics must match the emitted spill code.
pub fn verify_regalloc(func: &AllocFunction, fs: &FeatureSet) -> Vec<VerifyError> {
    let p = VerifyPass::RegAlloc;
    let name = func.name.as_str();
    let mut errors = Vec::new();
    let depth = fs.depth().count();

    // Overlapping live ranges must not share a register.
    for (i, a) in func.intervals.iter().enumerate() {
        let Some(ra) = a.reg else { continue };
        for b in &func.intervals[i + 1..] {
            if b.reg == Some(ra) && a.start <= b.end && b.start <= a.end {
                errors.push(err(
                    p,
                    name,
                    None,
                    None,
                    "overlapping-intervals-share-register",
                    format!(
                        "{} [{}, {}] and {} [{}, {}] both live in {ra}",
                        a.vreg, a.start, a.end, b.vreg, b.start, b.end
                    ),
                ));
            }
        }
    }

    let mut spill_stores = 0.0f64;
    let mut refill_loads = 0.0f64;
    for (bi, b) in func.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            for r in inst.registers() {
                if r.index() as u32 >= depth {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        Some(ii),
                        "register-beyond-depth",
                        format!("{r} exceeds {fs}'s register depth {depth}"),
                    ));
                }
            }
            if !is_spill_mem(inst) {
                continue;
            }
            let shape_ok = matches!(inst.opcode, MacroOpcode::Load | MacroOpcode::Store)
                && inst.mem.is_some_and(|m| {
                    m.mode == AddressingMode::BaseDisp
                        && m.disp_bytes == 1
                        && m.locality == MemLocality::Stack
                });
            if !shape_ok {
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "spill-slot-shape",
                    format!(
                        "stack-pointer-based access must be a `[sp + disp8]` load/store: {inst}"
                    ),
                ));
                continue;
            }
            match inst.opcode {
                MacroOpcode::Store => {
                    spill_stores += b.weight;
                    // A spill store saves the value computed by the
                    // immediately preceding instruction.
                    let paired = ii > 0 && b.insts[ii - 1].dst == inst.src1.reg();
                    if !paired {
                        errors.push(err(
                            p,
                            name,
                            Some(bi),
                            Some(ii),
                            "spill-store-unpaired",
                            format!(
                                "spill store of {:?} does not follow its defining instruction",
                                inst.src1.reg()
                            ),
                        ));
                    }
                }
                MacroOpcode::Load => {
                    refill_loads += b.weight;
                    let Some(s) = inst.dst else { continue };
                    // The refilled scratch must be read before it is
                    // clobbered. A clobber by another refill load is
                    // scratch-pool recycling under overflow (counted in
                    // `scratch_overflows`), not a verification error.
                    let mut used = false;
                    let mut clobbered_by = None;
                    for later in &b.insts[ii + 1..] {
                        let reads = later
                            .src1
                            .reg()
                            .into_iter()
                            .chain(later.src2.reg())
                            .chain(later.mem.map(|m| m.base).filter(|_| {
                                !matches!(later.mem.map(|m| m.mode), Some(AddressingMode::Absolute))
                            }))
                            .chain(later.mem.and_then(|m| m.index))
                            .chain(later.predicate.map(|pr| pr.reg));
                        if reads.into_iter().any(|r| r == s) {
                            used = true;
                            break;
                        }
                        if later.dst == Some(s) {
                            if !(later.opcode == MacroOpcode::Load && is_spill_mem(later)) {
                                clobbered_by = Some(*later);
                            }
                            break;
                        }
                    }
                    if !used {
                        errors.push(err(
                            p,
                            name,
                            Some(bi),
                            Some(ii),
                            "refill-load-unused",
                            match clobbered_by {
                                Some(c) => {
                                    format!("refill into {s} clobbered by `{c}` before any use")
                                }
                                None => format!("refill into {s} is never read"),
                            },
                        ));
                    }
                }
                _ => unreachable!("shape check restricts to load/store"),
            }
        }
    }

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0);
    if !close(spill_stores, func.stats.dyn_spill_stores)
        || !close(refill_loads, func.stats.dyn_refill_loads)
    {
        errors.push(err(
            p,
            name,
            None,
            None,
            "regalloc-stats-mismatch",
            format!(
                "recounted spill stores {spill_stores} / refill loads {refill_loads}, \
                 stats claim {} / {}",
                func.stats.dyn_spill_stores, func.stats.dyn_refill_loads
            ),
        ));
    }
    errors
}

/// Checks that `bytes` is exactly the encoding of `insts` under `fs`:
/// the stream decodes without error into one length record per
/// instruction, and each record's length and prefix flags match a fresh
/// encode of that instruction. Exposed separately so corrupted byte
/// streams can be verified directly.
pub fn verify_stream_roundtrip(
    fs: &FeatureSet,
    insts: &[MachineInst],
    bytes: &[u8],
    function: &str,
    block: Option<usize>,
) -> Vec<VerifyError> {
    let p = VerifyPass::Encoding;
    let mut errors = Vec::new();
    let encoder = Encoder::new(*fs);
    let decoded = match InstLengthDecoder::new().decode_stream(bytes) {
        Ok(d) => d,
        Err(e) => {
            errors.push(err(
                p,
                function,
                block,
                None,
                "stream-decode-error",
                format!("emitted stream does not decode: {e}"),
            ));
            return errors;
        }
    };
    if decoded.len() != insts.len() {
        errors.push(err(
            p,
            function,
            block,
            None,
            "stream-roundtrip-mismatch",
            format!(
                "stream decodes to {} instructions, {} were encoded",
                decoded.len(),
                insts.len()
            ),
        ));
        return errors;
    }
    for (ii, (inst, d)) in insts.iter().zip(&decoded).enumerate() {
        let enc = match encoder.encode(inst) {
            Ok(e) => e,
            Err(e) => {
                errors.push(err(
                    p,
                    function,
                    block,
                    Some(ii),
                    "encode-failed",
                    format!("{inst}: {e}"),
                ));
                continue;
            }
        };
        if d.len != enc.bytes.len()
            || d.has_rexbc != enc.has_rexbc
            || d.has_predicate != enc.has_predicate
            || d.has_rex != enc.has_rex
            || d.legacy_prefixes != enc.legacy_prefixes
        {
            errors.push(err(
                p,
                function,
                block,
                Some(ii),
                "stream-roundtrip-mismatch",
                format!(
                    "decoded (len {}, rexbc {}, pred {}, rex {}) != encoded \
                     (len {}, rexbc {}, pred {}, rex {}) for {inst}",
                    d.len,
                    d.has_rexbc,
                    d.has_predicate,
                    d.has_rex,
                    enc.bytes.len(),
                    enc.has_rexbc,
                    enc.has_predicate,
                    enc.has_rex
                ),
            ));
        }
    }
    errors
}

/// Pass 5: feature-set legality and encode/decode round-trip of the
/// final machine code (terminators included), plus consistency of the
/// recorded per-block and total byte sizes.
pub fn verify_encoding(code: &CompiledCode) -> Vec<VerifyError> {
    let p = VerifyPass::Encoding;
    let name = code.name.as_str();
    let mut errors = Vec::new();
    let encoder = Encoder::new(code.fs);

    for (bi, b) in code.blocks.iter().enumerate() {
        let mut full: Vec<MachineInst> = b.insts.clone();
        if let Some(t) = terminator_inst(&b.term) {
            full.push(t);
        }
        let mut all_legal = true;
        for (ii, inst) in full.iter().enumerate() {
            if !inst.legal_under(&code.fs) {
                all_legal = false;
                errors.push(err(
                    p,
                    name,
                    Some(bi),
                    Some(ii),
                    "illegal-instruction-for-feature-set",
                    format!("{inst} requires features outside {}", code.fs),
                ));
            }
        }
        if !all_legal {
            continue;
        }
        match encoder.encode_stream(&full) {
            Err(e) => errors.push(err(
                p,
                name,
                Some(bi),
                None,
                "encode-failed",
                format!("block does not encode: {e}"),
            )),
            Ok(bytes) => {
                errors.extend(verify_stream_roundtrip(
                    &code.fs,
                    &full,
                    &bytes,
                    name,
                    Some(bi),
                ));
                if bytes.len() != b.code_bytes {
                    errors.push(err(
                        p,
                        name,
                        Some(bi),
                        None,
                        "block-bytes-mismatch",
                        format!(
                            "block encodes to {} bytes but records code_bytes {}",
                            bytes.len(),
                            b.code_bytes
                        ),
                    ));
                }
            }
        }
    }

    let recorded: usize = code.blocks.iter().map(|b| b.code_bytes).sum();
    if recorded != code.stats.code_bytes {
        errors.push(err(
            p,
            name,
            None,
            None,
            "stats-code-bytes-mismatch",
            format!(
                "blocks record {recorded} total bytes, stats claim {}",
                code.stats.code_bytes
            ),
        ));
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_all_feature_sets, CompileOptions};
    use crate::ir::{AddrExpr, BlockId, BranchBehavior, IrBlock, IrInst, IrOp};
    use crate::isel::select;
    use crate::regalloc::allocate;

    /// A loop with an unpredictable diamond, loop-carried values and an
    /// implicit parameter — the shapes the generator emits.
    fn looped() -> IrFunction {
        let mut f = IrFunction::new("looped");
        let ptr = f.new_vreg(); // implicit param: never defined
        let i = f.new_vreg(); // defined only in the latch (back edge)
        let c = f.new_vreg();
        let x = f.new_vreg();
        let c2 = f.new_vreg();
        let mut head = IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::random(0.5),
            },
            100.0,
        );
        head.insts.push(IrInst::load(
            x,
            AddrExpr::base(ptr),
            cisa_isa::inst::MemLocality::WorkingSet,
        ));
        head.insts.push(IrInst::compute(IrOp::Cmp, c, x, i));
        f.add_block(head);
        let mut t = IrBlock::new(Terminator::Jump(BlockId(3)), 50.0);
        t.insts.push(IrInst::compute(IrOp::IntAlu, x, x, i));
        f.add_block(t);
        let mut e = IrBlock::new(Terminator::Jump(BlockId(3)), 50.0);
        e.insts.push(IrInst::compute(IrOp::IntAlu, x, i, i));
        f.add_block(e);
        let mut latch = IrBlock::new(
            Terminator::Branch {
                cond: c2,
                taken: BlockId(0),
                not_taken: BlockId(4),
                behavior: BranchBehavior::loop_back(100),
            },
            100.0,
        );
        latch.insts.push(IrInst::compute(IrOp::IntAlu, i, i, x));
        latch.insts.push(IrInst::compute(IrOp::Cmp, c2, i, x));
        f.add_block(latch);
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        f
    }

    #[test]
    fn clean_ir_verifies() {
        assert_eq!(verify_ir(&looped()), vec![]);
    }

    #[test]
    fn default_level_tracks_build_profile() {
        let expect = if cfg!(debug_assertions) {
            VerifyLevel::Full
        } else {
            VerifyLevel::Off
        };
        assert_eq!(VerifyLevel::default(), expect);
        assert!(!VerifyLevel::Off.enabled());
        assert!(VerifyLevel::Full.enabled());
    }

    #[test]
    fn every_stage_is_clean_for_all_feature_sets() {
        let f = looped();
        for fs in FeatureSet::all() {
            let mut ir = f.clone();
            if fs.predication() == Predication::Full {
                crate::ifconvert::if_convert(&mut ir, &Default::default());
                assert_eq!(verify_ir(&ir), vec![], "{fs}");
                assert_eq!(verify_predication(&ir, &fs), vec![], "{fs}");
            }
            let vfunc = select(&ir, &fs);
            assert_eq!(verify_isel(&vfunc, &fs), vec![], "{fs}");
            let alloc = allocate(&vfunc, &fs);
            assert_eq!(verify_regalloc(&alloc, &fs), vec![], "{fs}");
        }
        for code in compile_all_feature_sets(&f, &CompileOptions::default()).unwrap() {
            assert_eq!(verify_encoding(&code), vec![], "{}", code.fs);
        }
    }

    #[test]
    fn rules_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in RULES {
            assert!(seen.insert(r), "duplicate rule name {r}");
        }
    }

    #[test]
    fn error_display_names_the_site() {
        let e = err(
            VerifyPass::RegAlloc,
            "f",
            Some(3),
            Some(7),
            "register-beyond-depth",
            "r40 exceeds depth 16".into(),
        );
        let s = e.to_string();
        assert!(s.contains("[regalloc]"), "{s}");
        assert!(s.contains("bb3"), "{s}");
        assert!(s.contains("#7"), "{s}");
        assert!(s.contains("register-beyond-depth"), "{s}");
    }
}
