//! Machine-independent if-conversion (Section IV-A).
//!
//! Re-purposes LLVM's three if-conversion shapes:
//!
//! - **diamond** — a true block and a false block split from an entry
//!   block and rejoin at a tail,
//! - **triangle** — the true block falls through into the false
//!   successor,
//! - **simple** — the blocks split but do not rejoin (an early `Ret`
//!   inside a conditional).
//!
//! For every matching pattern the pass predicates the hoisted
//! instructions on the branch condition and removes the branch when
//! profitable. Profitability follows the paper: branch probability,
//! approximate instruction latency along each path, and the configured
//! pipeline depth (misprediction penalty).

use crate::ir::{BranchPattern, IrBlock, IrFunction, Terminator};

/// Profitability knobs for if-conversion.
#[derive(Debug, Clone, Copy)]
pub struct IfConvertConfig {
    /// Pipeline depth: the cycles lost to a branch misprediction.
    pub mispredict_penalty: f64,
    /// Approximate sustained IPC of the target; converts extra
    /// instructions into cycles.
    pub ipc_hint: f64,
    /// Maximum hoistable block size (instructions).
    pub max_block_size: usize,
}

impl Default for IfConvertConfig {
    fn default() -> Self {
        IfConvertConfig {
            mispredict_penalty: 7.0,
            ipc_hint: 1.6,
            max_block_size: 12,
        }
    }
}

/// Outcome statistics of an if-conversion run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IfConvertStats {
    /// Diamonds converted.
    pub diamonds: u32,
    /// Triangles converted.
    pub triangles: u32,
    /// Simple patterns converted.
    pub simples: u32,
    /// Profile-weighted branches eliminated.
    pub dyn_branches_removed: f64,
    /// Profile-weighted extra instructions now executed.
    pub dyn_insts_added: f64,
}

impl IfConvertStats {
    /// Total patterns converted.
    pub fn total(&self) -> u32 {
        self.diamonds + self.triangles + self.simples
    }
}

/// Estimated misprediction rate of a branch from its behaviour
/// annotation, as the compiler's profitability analysis would see it.
fn estimated_mispredict_rate(behavior: &crate::ir::BranchBehavior) -> f64 {
    let base = behavior.taken_prob.min(1.0 - behavior.taken_prob);
    match behavior.pattern {
        BranchPattern::LoopBack { trip } => (1.0 / trip.max(1) as f64).min(base + 0.01),
        BranchPattern::Biased => base * 0.8,
        BranchPattern::Periodic { .. } => base * 0.25,
        BranchPattern::Random => base * 1.4, // two-sided confusion
    }
}

/// Runs if-conversion over a function in place, returning statistics.
///
/// Only call for targets with full predication support; the caller (the
/// compile driver) guards on the feature set.
pub fn if_convert(func: &mut IrFunction, config: &IfConvertConfig) -> IfConvertStats {
    let mut stats = IfConvertStats::default();
    let preds = func.predecessors();

    // Iterate entry candidates; convert at most one pattern per entry
    // block per pass (conversions can cascade, one pass is enough for
    // the shapes our generator emits).
    for e in 0..func.blocks.len() {
        let Terminator::Branch {
            cond,
            taken,
            not_taken,
            behavior,
        } = func.blocks[e].term
        else {
            continue;
        };
        if taken == not_taken || taken.idx() == e || not_taken.idx() == e {
            continue;
        }
        let t = taken.idx();
        let f = not_taken.idx();
        let single_pred = |b: usize| preds[b].len() == 1 && preds[b][0].idx() == e;
        let hoistable = |b: &IrBlock, cfg: &IfConvertConfig| {
            // An arm that redefines the guard register would corrupt the
            // predicate for every instruction hoisted after it.
            b.insts.len() <= cfg.max_block_size
                && b.insts
                    .iter()
                    .all(|i| i.pred.is_none() && i.def() != Some(cond))
        };

        let p_taken = behavior.taken_prob;
        let mispredict = estimated_mispredict_rate(&behavior);
        let weight = func.blocks[e].weight;
        let branch_cost = mispredict * config.mispredict_penalty;

        // Diamond: taken and not-taken both jump to a common join.
        let t_term = func.blocks[t].term;
        let f_term = func.blocks[f].term;
        if let (Terminator::Jump(tj), Terminator::Jump(fj)) = (t_term, f_term) {
            if tj == fj
                && single_pred(t)
                && single_pred(f)
                && hoistable(&func.blocks[t], config)
                && hoistable(&func.blocks[f], config)
            {
                let t_len = func.blocks[t].insts.len() as f64;
                let f_len = func.blocks[f].insts.len() as f64;
                // Extra instructions executed per entry execution.
                let extra = (1.0 - p_taken) * t_len + p_taken * f_len;
                if branch_cost > extra / config.ipc_hint {
                    let t_insts = std::mem::take(&mut func.blocks[t].insts);
                    let f_insts = std::mem::take(&mut func.blocks[f].insts);
                    let entry = &mut func.blocks[e];
                    for mut i in t_insts {
                        i.pred = Some((cond, false));
                        entry.insts.push(i);
                    }
                    for mut i in f_insts {
                        i.pred = Some((cond, true));
                        entry.insts.push(i);
                    }
                    entry.term = Terminator::Jump(tj);
                    func.blocks[t].weight = 0.0;
                    func.blocks[f].weight = 0.0;
                    stats.diamonds += 1;
                    stats.dyn_branches_removed += weight;
                    stats.dyn_insts_added += weight * extra;
                    continue;
                }
            }
        }

        // Triangle: the taken block falls through into the not-taken
        // successor.
        if let Terminator::Jump(tj) = t_term {
            if tj == not_taken && single_pred(t) && hoistable(&func.blocks[t], config) {
                let t_len = func.blocks[t].insts.len() as f64;
                let extra = (1.0 - p_taken) * t_len;
                if branch_cost > extra / config.ipc_hint {
                    let t_insts = std::mem::take(&mut func.blocks[t].insts);
                    let entry = &mut func.blocks[e];
                    for mut i in t_insts {
                        i.pred = Some((cond, false));
                        entry.insts.push(i);
                    }
                    entry.term = Terminator::Jump(not_taken);
                    func.blocks[t].weight = 0.0;
                    stats.triangles += 1;
                    stats.dyn_branches_removed += weight;
                    stats.dyn_insts_added += weight * extra;
                    continue;
                }
            }
        }

        // Simple: the taken block splits off and does not rejoin (its
        // terminator is a Ret or a jump elsewhere). Predicating its body
        // is only legal when the side exit is rare enough that we treat
        // the residual control transfer as a highly biased branch; we
        // require a Ret terminator and hoist the body, keeping the
        // (now cheaper, body-less) conditional exit.
        if matches!(t_term, Terminator::Ret)
            && single_pred(t)
            && hoistable(&func.blocks[t], config)
            && p_taken < 0.05
        {
            let t_len = func.blocks[t].insts.len() as f64;
            let extra = t_len; // body now always executes
            if branch_cost > extra / config.ipc_hint {
                let t_insts = std::mem::take(&mut func.blocks[t].insts);
                let entry = &mut func.blocks[e];
                for mut i in t_insts {
                    i.pred = Some((cond, false));
                    entry.insts.push(i);
                }
                // The conditional exit remains (still a branch) but its
                // body is hoisted; weight bookkeeping only.
                func.blocks[t].weight = weight * p_taken;
                stats.simples += 1;
                stats.dyn_insts_added += weight * extra;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AddrExpr, BlockId, BranchBehavior, IrInst, IrOp};
    use cisa_isa::inst::MemLocality;

    /// entry(b0) -> t(b1)/f(b2) -> join(b3)
    fn diamond(taken_prob: f64, pattern_random: bool, body_len: usize) -> IrFunction {
        let mut func = IrFunction::new("diamond");
        let cond = func.new_vreg();
        let x = func.new_vreg();
        let behavior = if pattern_random {
            BranchBehavior::random(taken_prob)
        } else {
            BranchBehavior::loop_back(1000)
        };
        let mut entry = IrBlock::new(
            Terminator::Branch {
                cond,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior,
            },
            100.0,
        );
        entry.insts.push(IrInst::compute(IrOp::Cmp, cond, x, x));
        func.add_block(entry);
        let mut t = IrBlock::new(Terminator::Jump(BlockId(3)), 100.0 * taken_prob);
        let mut f = IrBlock::new(Terminator::Jump(BlockId(3)), 100.0 * (1.0 - taken_prob));
        for _ in 0..body_len {
            t.insts.push(IrInst::compute(IrOp::IntAlu, x, x, cond));
            f.insts.push(IrInst::compute(IrOp::IntAlu, x, x, cond));
        }
        func.add_block(t);
        func.add_block(f);
        func.add_block(IrBlock::new(Terminator::Ret, 100.0));
        func.validate().unwrap();
        func
    }

    #[test]
    fn converts_unpredictable_diamond() {
        let mut f = diamond(0.5, true, 3);
        let stats = if_convert(&mut f, &IfConvertConfig::default());
        assert_eq!(stats.diamonds, 1);
        assert!(stats.dyn_branches_removed > 0.0);
        // Entry now holds cmp + both predicated bodies and jumps to join.
        assert_eq!(f.blocks[0].insts.len(), 1 + 6);
        assert!(matches!(f.blocks[0].term, Terminator::Jump(BlockId(3))));
        // Hoisted instructions carry complementary predicates.
        let preds: Vec<_> = f.blocks[0].insts[1..]
            .iter()
            .map(|i| i.pred.unwrap().1)
            .collect();
        assert_eq!(preds, vec![false, false, false, true, true, true]);
        f.validate().unwrap();
    }

    #[test]
    fn skips_predictable_branch() {
        // Loop back-edge: ~0.1% mispredict — never profitable.
        let mut f = diamond(0.5, false, 3);
        let stats = if_convert(&mut f, &IfConvertConfig::default());
        assert_eq!(stats.total(), 0);
        assert!(matches!(f.blocks[0].term, Terminator::Branch { .. }));
    }

    #[test]
    fn skips_oversized_bodies() {
        let mut f = diamond(0.5, true, 40);
        let stats = if_convert(&mut f, &IfConvertConfig::default());
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn converts_triangle() {
        let mut func = IrFunction::new("triangle");
        let cond = func.new_vreg();
        let x = func.new_vreg();
        let mut entry = IrBlock::new(
            Terminator::Branch {
                cond,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::random(0.5),
            },
            50.0,
        );
        entry.insts.push(IrInst::compute(IrOp::Cmp, cond, x, x));
        func.add_block(entry);
        let mut t = IrBlock::new(Terminator::Jump(BlockId(2)), 25.0);
        t.insts.push(IrInst::store(
            x,
            AddrExpr::base(cond),
            MemLocality::WorkingSet,
        ));
        func.add_block(t);
        func.add_block(IrBlock::new(Terminator::Ret, 50.0));
        func.validate().unwrap();

        let stats = if_convert(&mut func, &IfConvertConfig::default());
        assert_eq!(stats.triangles, 1);
        assert!(matches!(func.blocks[0].term, Terminator::Jump(BlockId(2))));
        assert_eq!(
            func.blocks[0].insts.last().unwrap().pred,
            Some((cond, false))
        );
        func.validate().unwrap();
    }

    #[test]
    fn simple_pattern_hoists_rare_exit_body() {
        let mut func = IrFunction::new("simple");
        let cond = func.new_vreg();
        let x = func.new_vreg();
        let mut entry = IrBlock::new(
            Terminator::Branch {
                cond,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::random(0.01),
            },
            100.0,
        );
        entry.insts.push(IrInst::compute(IrOp::Cmp, cond, x, x));
        func.add_block(entry);
        let mut t = IrBlock::new(Terminator::Ret, 1.0);
        t.insts.push(IrInst::compute(IrOp::IntAlu, x, x, x));
        func.add_block(t);
        func.add_block(IrBlock::new(Terminator::Ret, 99.0));
        func.validate().unwrap();

        // Low taken_prob gives ~1.4% estimated mispredict; the 1-inst
        // body costs ~0.6 cycles, so defaults don't convert. Crank the
        // penalty to force profitability.
        let cfg = IfConvertConfig {
            mispredict_penalty: 60.0,
            ..Default::default()
        };
        let stats = if_convert(&mut func, &cfg);
        assert_eq!(stats.simples, 1);
        // The conditional exit itself remains a branch.
        assert!(matches!(func.blocks[0].term, Terminator::Branch { .. }));
        assert!(func.blocks[0].insts.iter().any(|i| i.pred.is_some()));
    }

    #[test]
    fn never_converts_arms_that_redefine_the_guard() {
        // If an arm writes the condition register, hoisting it would
        // change the predicate seen by every later hoisted instruction.
        let mut func = diamond(0.5, true, 2);
        let cond = match func.blocks[0].term {
            Terminator::Branch { cond, .. } => cond,
            _ => unreachable!(),
        };
        let x = func.blocks[1].insts[0].dst;
        func.blocks[1]
            .insts
            .push(IrInst::compute(IrOp::Cmp, cond, x, x));
        func.validate().unwrap();
        let stats = if_convert(&mut func, &IfConvertConfig::default());
        assert_eq!(stats.total(), 0, "guard-clobbering arm must not convert");
    }

    #[test]
    fn never_converts_blocks_with_extra_predecessors() {
        let mut func = diamond(0.5, true, 2);
        // Add a second predecessor to the taken block.
        let t_id = BlockId(1);
        func.add_block(IrBlock::new(Terminator::Jump(t_id), 1.0));
        // Note: bb4 is unreachable from entry but still contributes a
        // predecessor edge, which must veto hoisting of bb1.
        let stats = if_convert(&mut func, &IfConvertConfig::default());
        assert_eq!(stats.diamonds, 0);
    }
}
