//! Compiler-side feature selection (Section IV-A).
//!
//! "For each code region ... the compiler must now make a global (or
//! regional) decision about which features to use and which to skip ...
//! with some knowledge of the features of the cores for the processor
//! on which it will run."
//!
//! [`select_feature_set`] implements that heuristic: compile the region
//! for every candidate feature set actually implemented by the target
//! multicore, and score the results by a static cost model —
//! profile-weighted micro-ops, with spill/refill traffic and encoding
//! bloat penalized — choosing the cheapest. [`FeatureChoice`] records
//! both the winner and the reasoning, which the Section IV experiment
//! binary prints per benchmark region (hmmer pinning depth 64, lbm
//! settling for 16, milc predicating some regions and not others).

use cisa_isa::FeatureSet;

use crate::driver::{compile, CompileOptions};
use crate::ir::IrFunction;
use crate::CodeStats;

/// The outcome of feature selection for one region.
#[derive(Debug, Clone)]
pub struct FeatureChoice {
    /// The chosen feature set.
    pub chosen: FeatureSet,
    /// Static cost of the chosen compilation.
    pub cost: f64,
    /// All candidates with their costs, sorted best-first.
    pub ranking: Vec<(FeatureSet, f64)>,
}

impl FeatureChoice {
    /// Whether the region ended up using full predication.
    pub fn uses_full_predication(&self) -> bool {
        self.chosen.predication() == cisa_isa::Predication::Full
    }

    /// The chosen register depth.
    pub fn depth(&self) -> u32 {
        self.chosen.depth().count()
    }
}

/// Static cost of one compilation: the compiler's stand-in for runtime.
///
/// Profile-weighted micro-ops dominate; spill traffic is charged extra
/// (those loads hit the stack but still occupy pipeline slots and
/// energy), and encoded size is weighted lightly (fetch pressure).
pub fn static_cost(stats: &CodeStats) -> f64 {
    let uops = stats.total_uops();
    let spill_traffic = stats.regalloc.dyn_spill_stores + stats.regalloc.dyn_refill_loads;
    let remat = stats.regalloc.dyn_remat_ops;
    uops + 1.5 * spill_traffic + 0.5 * remat + 0.002 * stats.code_bytes as f64 * (uops / 1e4)
}

/// Chooses the best feature set for a region from the sets implemented
/// by the target multicore.
///
/// # Panics
///
/// Panics if `available` is empty.
pub fn select_feature_set(
    func: &IrFunction,
    available: &[FeatureSet],
    options: &CompileOptions,
) -> FeatureChoice {
    assert!(
        !available.is_empty(),
        "a multicore implements at least one feature set"
    );
    let mut ranking: Vec<(FeatureSet, f64)> = available
        .iter()
        .filter_map(|fs| {
            compile(func, fs, options)
                .ok()
                .map(|code| (*fs, static_cost(&code.stats)))
        })
        .collect();
    ranking.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    let (chosen, cost) = ranking[0];
    FeatureChoice {
        chosen,
        cost,
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisa_isa::Predication;

    fn choose(bench_fn: &IrFunction, names: &[&str]) -> FeatureChoice {
        let sets: Vec<FeatureSet> = names.iter().map(|n| n.parse().expect("valid")).collect();
        select_feature_set(bench_fn, &sets, &CompileOptions::default())
    }

    /// A region with `n` simultaneously live values.
    fn pressure_region(n: u32) -> IrFunction {
        use crate::ir::*;
        use cisa_isa::inst::MemLocality;
        let mut f = IrFunction::new(format!("region{n}"));
        let base = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 100.0);
        b.insts.push(IrInst::constant(base, 4));
        let mut live = Vec::new();
        for k in 0..n {
            let v = f.new_vreg();
            b.insts.push(IrInst::load(
                v,
                AddrExpr::base_disp(base, k as i32 * 8),
                MemLocality::WorkingSet,
            ));
            live.push(v);
        }
        let mut acc = f.new_vreg();
        b.insts.push(IrInst::constant(acc, 1));
        for &v in &live {
            let nv = f.new_vreg();
            b.insts.push(IrInst::compute(IrOp::IntAlu, nv, acc, v));
            acc = nv;
        }
        f.add_block(b);
        f.validate().unwrap();
        f
    }

    #[test]
    fn high_pressure_regions_pick_deep_registers() {
        let f = pressure_region(40);
        let c = choose(
            &f,
            &["microx86-16D-32W", "microx86-32D-32W", "microx86-64D-32W"],
        );
        assert_eq!(c.depth(), 64, "40 live values want depth 64");
    }

    #[test]
    fn low_pressure_regions_avoid_prefix_costs() {
        let f = pressure_region(4);
        let c = choose(&f, &["microx86-16D-32W", "microx86-64D-32W"]);
        assert_eq!(c.depth(), 16, "4 live values don't pay for REXBC encodings");
    }

    #[test]
    fn ranking_is_exhaustive_and_sorted() {
        let f = pressure_region(20);
        let c = choose(
            &f,
            &["microx86-8D-32W", "microx86-16D-32W", "microx86-32D-32W"],
        );
        assert_eq!(c.ranking.len(), 3);
        assert!(c.ranking.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(c.ranking[0].0, c.chosen);
        assert_eq!(c.ranking[0].1, c.cost);
    }

    #[test]
    fn branchy_regions_take_predication_when_offered() {
        use crate::ir::*;
        // An unpredictable diamond in a hot loop.
        let mut f = IrFunction::new("branchy");
        let c = f.new_vreg();
        let x = f.new_vreg();
        let mut entry = IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::random(0.5),
            },
            200.0,
        );
        // x must be initialized before the arms conditionally redefine
        // it — the staged verifier rejects uses no definition reaches.
        entry.insts.push(IrInst::constant(x, 7));
        entry.insts.push(IrInst::compute(IrOp::Cmp, c, x, x));
        f.add_block(entry);
        let mut t = IrBlock::new(Terminator::Jump(BlockId(3)), 100.0);
        t.insts.push(IrInst::compute(IrOp::IntAlu, x, x, c));
        f.add_block(t);
        let mut e = IrBlock::new(Terminator::Jump(BlockId(3)), 100.0);
        e.insts.push(IrInst::compute(IrOp::IntAlu, x, c, c));
        f.add_block(e);
        f.add_block(IrBlock::new(Terminator::Ret, 200.0));
        f.validate().unwrap();

        let choice = choose(&f, &["x86-32D-64W", "x86-32D-64W-P"]);
        // The static cost model alone cannot see mispredictions, so the
        // converted code must at least not lose badly; the ranking keeps
        // both candidates visible for schedulers that can.
        assert_eq!(choice.ranking.len(), 2);
        let full = choice
            .ranking
            .iter()
            .find(|(fs, _)| fs.predication() == Predication::Full)
            .expect("full-pred candidate ranked");
        let partial = choice
            .ranking
            .iter()
            .find(|(fs, _)| fs.predication() == Predication::Partial)
            .expect("partial candidate ranked");
        assert!(
            full.1 <= partial.1 * 1.2,
            "predicated code stays competitive"
        );
    }

    #[test]
    #[should_panic(expected = "at least one feature set")]
    fn empty_candidate_set_panics() {
        let f = pressure_region(4);
        select_feature_set(&f, &[], &CompileOptions::default());
    }
}
