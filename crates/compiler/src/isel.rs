//! Instruction selection: lowers IR to machine instructions over virtual
//! registers, specializing for the target feature set.
//!
//! Three of the five feature axes act here:
//!
//! - **Complexity** — under full x86, single-use loads fold into
//!   memory-source ALU forms and single-use ALU results fold into
//!   memory-destination forms (fewer macro-ops, shorter live ranges);
//!   under microx86 every memory access stays an explicit load/store so
//!   each macro-op decodes 1:1.
//! - **SIMD** — blocks the generator marks vectorizable compile to
//!   SSE2 packed ops when the target has SSE (iterating `1/lanes` as
//!   often); otherwise the scalarized form is emitted, as the paper's
//!   precompiled scalar fallback.
//! - **Register width** — 64-bit data operations are double-pumped on
//!   32-bit targets (lo/hi halves in paired virtual registers, doubling
//!   their register pressure), matching the paper's long-mode emulation
//!   observation that wide types on narrow ISAs cost both instructions
//!   and registers.

use cisa_isa::inst::{MacroOpcode, MemLocality, MemRole};
use cisa_isa::{Complexity, FeatureSet, RegisterWidth, SimdSupport};
use std::collections::HashMap;

use crate::ir::{AddrExpr, IrFunction, IrInst, IrOp, Terminator, VReg};

/// An operand of a [`VInst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VOp {
    /// Virtual register.
    Reg(VReg),
    /// Immediate of the given byte width.
    Imm(u8),
    /// Absent.
    None,
}

impl VOp {
    /// The register, if any.
    pub fn reg(self) -> Option<VReg> {
        match self {
            VOp::Reg(r) => Some(r),
            _ => None,
        }
    }
}

/// Memory operand over virtual registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VMem {
    /// Base register (`None` only for spill slots, which use the frame
    /// base assigned at register allocation).
    pub base: Option<VReg>,
    /// Index register.
    pub index: Option<VReg>,
    /// Displacement width in bytes (0, 1, 4).
    pub disp_bytes: u8,
    /// Locality class.
    pub locality: MemLocality,
}

impl VMem {
    fn from_addr(addr: &AddrExpr, locality: MemLocality) -> Self {
        VMem {
            base: Some(addr.base),
            index: addr.index,
            disp_bytes: addr.disp_bytes(),
            locality,
        }
    }

    /// A spill-slot operand (frame-base addressed, disp8).
    pub fn spill_slot() -> Self {
        VMem {
            base: None,
            index: None,
            disp_bytes: 1,
            locality: MemLocality::Stack,
        }
    }
}

/// A machine instruction over virtual registers (pre register
/// allocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VInst {
    /// Macro opcode.
    pub opcode: MacroOpcode,
    /// Destination.
    pub dst: Option<VReg>,
    /// First source.
    pub src1: VOp,
    /// Second source.
    pub src2: VOp,
    /// Memory operand.
    pub mem: Option<VMem>,
    /// Memory role.
    pub mem_role: MemRole,
    /// 64-bit operation (REX.W).
    pub wide: bool,
    /// Full-predication guard.
    pub pred: Option<(VReg, bool)>,
    /// If the destination is a rematerializable constant, the immediate
    /// width to re-emit instead of spilling.
    pub remat_imm: Option<u8>,
}

impl VInst {
    fn new(opcode: MacroOpcode, dst: Option<VReg>, src1: VOp, src2: VOp) -> Self {
        VInst {
            opcode,
            dst,
            src1,
            src2,
            mem: None,
            mem_role: MemRole::None,
            wide: false,
            pred: None,
            remat_imm: None,
        }
    }

    /// Source registers (including address components and predicate).
    pub fn uses(&self) -> impl Iterator<Item = VReg> + '_ {
        self.src1
            .reg()
            .into_iter()
            .chain(self.src2.reg())
            .chain(self.mem.and_then(|m| m.base))
            .chain(self.mem.and_then(|m| m.index))
            .chain(self.pred.map(|(p, _)| p))
    }

    /// The defined register, if any.
    pub fn def(&self) -> Option<VReg> {
        self.dst
    }

    /// Number of micro-ops this instruction decodes into.
    pub fn uop_count(&self) -> usize {
        match self.opcode {
            MacroOpcode::Call | MacroOpcode::Ret => 2,
            MacroOpcode::Load | MacroOpcode::Store | MacroOpcode::Lea => 1,
            _ => match self.mem_role {
                MemRole::None => 1,
                MemRole::Src => 2,
                MemRole::Dst => 3,
            },
        }
    }
}

/// A lowered block.
#[derive(Debug, Clone, PartialEq)]
pub struct VBlock {
    /// Machine instructions over virtual registers.
    pub insts: Vec<VInst>,
    /// Terminator (unchanged from IR).
    pub term: Terminator,
    /// Dynamic weight — scaled down by the vector lane count when the
    /// block was vectorized.
    pub weight: f64,
    /// Whether this block was compiled to packed SIMD.
    pub vectorized: bool,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct VFunction {
    /// Source name.
    pub name: String,
    /// Blocks, same ids as the IR.
    pub blocks: Vec<VBlock>,
    /// Virtual register count (isel may allocate fresh registers).
    pub vreg_count: u32,
}

/// Lowers an IR function for the given feature set.
pub fn select(func: &IrFunction, fs: &FeatureSet) -> VFunction {
    let mut vreg_count = func.vreg_count;
    let mut new_vreg = || {
        let v = VReg(vreg_count);
        vreg_count += 1;
        v
    };
    // hi-half registers for double-pumped 64-bit data on 32-bit targets.
    let narrow = fs.width() == RegisterWidth::W32;
    let mut hi_regs: HashMap<VReg, VReg> = HashMap::new();

    let mut blocks = Vec::with_capacity(func.blocks.len());
    for b in &func.blocks {
        let vectorize = b.vectorizable.filter(|_| fs.simd() == SimdSupport::Sse);
        let mut insts = Vec::with_capacity(b.insts.len() + 4);
        for i in &b.insts {
            lower_inst(
                i,
                vectorize.is_some(),
                narrow,
                &mut hi_regs,
                &mut new_vreg,
                &mut insts,
            );
        }
        let weight = match vectorize {
            Some(hint) => b.weight / hint.lanes.max(1) as f64,
            None => b.weight,
        };
        blocks.push(VBlock {
            insts,
            term: b.term,
            weight,
            vectorized: vectorize.is_some(),
        });
    }

    let mut out = VFunction {
        name: func.name.clone(),
        blocks,
        vreg_count,
    };
    if fs.complexity() == Complexity::X86 {
        fold_memory_operands(&mut out);
    }
    out
}

fn lower_inst(
    i: &IrInst,
    vectorized: bool,
    narrow: bool,
    hi_regs: &mut HashMap<VReg, VReg>,
    new_vreg: &mut impl FnMut() -> VReg,
    out: &mut Vec<VInst>,
) {
    let dst = i.def();
    let s1 = if i.src1 == IrInst::NONE {
        VOp::None
    } else {
        VOp::Reg(i.src1)
    };
    let s2 = if i.src2 == IrInst::NONE {
        VOp::None
    } else {
        VOp::Reg(i.src2)
    };
    let pred = i.pred;
    let push = |out: &mut Vec<VInst>, mut v: VInst| {
        v.pred = pred;
        out.push(v);
    };
    let mut hi =
        |r: VReg, new_vreg: &mut dyn FnMut() -> VReg| *hi_regs.entry(r).or_insert_with(new_vreg);
    // Double-pump 64-bit *integer* data on 32-bit targets.
    let double_pump = narrow && i.wide && !matches!(i.op, IrOp::FpAlu | IrOp::FpMul);
    // Mark REX.W on 64-bit targets.
    let wide_flag = i.wide && !narrow;

    match i.op {
        IrOp::Const { imm_bytes } => {
            let mut v = VInst::new(MacroOpcode::Mov, dst, VOp::Imm(imm_bytes), VOp::None);
            v.remat_imm = Some(imm_bytes);
            v.wide = wide_flag;
            push(out, v);
            if double_pump {
                let d = dst.expect("const defines");
                let mut v2 = VInst::new(
                    MacroOpcode::Mov,
                    Some(hi(d, new_vreg)),
                    VOp::Imm(imm_bytes),
                    VOp::None,
                );
                v2.remat_imm = Some(imm_bytes);
                push(out, v2);
            }
        }
        IrOp::IntAlu | IrOp::Cmp => {
            let opcode = if vectorized && i.op == IrOp::IntAlu && !i.wide {
                MacroOpcode::VecAlu
            } else {
                MacroOpcode::IntAlu
            };
            let mut v = VInst::new(opcode, dst, s1, s2);
            v.wide = wide_flag;
            push(out, v);
            if double_pump {
                let d = dst.expect("alu defines");
                let h1 = i.src1 != IrInst::NONE;
                let h2 = i.src2 != IrInst::NONE;
                let hs1 = if h1 {
                    VOp::Reg(hi(i.src1, new_vreg))
                } else {
                    VOp::None
                };
                let hs2 = if h2 {
                    VOp::Reg(hi(i.src2, new_vreg))
                } else {
                    VOp::None
                };
                push(
                    out,
                    VInst::new(MacroOpcode::IntAlu, Some(hi(d, new_vreg)), hs1, hs2),
                );
            }
        }
        IrOp::IntMul => {
            let mut v = VInst::new(MacroOpcode::IntMul, dst, s1, s2);
            v.wide = wide_flag;
            push(out, v);
            if double_pump {
                let d = dst.expect("mul defines");
                let dh = hi(d, new_vreg);
                // Cross product + accumulate.
                push(out, VInst::new(MacroOpcode::IntMul, Some(dh), s1, s2));
                push(
                    out,
                    VInst::new(MacroOpcode::IntAlu, Some(dh), VOp::Reg(dh), s1),
                );
            }
        }
        IrOp::FpAlu => {
            let opcode = if vectorized {
                MacroOpcode::VecAlu
            } else {
                MacroOpcode::FpAlu
            };
            push(out, VInst::new(opcode, dst, s1, s2));
        }
        IrOp::FpMul => {
            let opcode = if vectorized {
                MacroOpcode::VecAlu
            } else {
                MacroOpcode::FpMul
            };
            push(out, VInst::new(opcode, dst, s1, s2));
        }
        IrOp::Load { loc } => {
            let addr = i.addr.expect("load has address");
            let mut v = VInst::new(MacroOpcode::Load, dst, VOp::None, VOp::None);
            v.mem = Some(VMem::from_addr(&addr, loc));
            v.mem_role = MemRole::Src;
            v.wide = wide_flag;
            push(out, v);
            if double_pump {
                let d = dst.expect("load defines");
                let mut v2 = VInst::new(
                    MacroOpcode::Load,
                    Some(hi(d, new_vreg)),
                    VOp::None,
                    VOp::None,
                );
                let mut m = VMem::from_addr(&addr, loc);
                m.disp_bytes = m.disp_bytes.max(1); // +4 offset for the hi half
                v2.mem = Some(m);
                v2.mem_role = MemRole::Src;
                push(out, v2);
            }
        }
        IrOp::Store { loc } => {
            let addr = i.addr.expect("store has address");
            let mut v = VInst::new(MacroOpcode::Store, None, s1, VOp::None);
            v.mem = Some(VMem::from_addr(&addr, loc));
            v.mem_role = MemRole::Dst;
            v.wide = wide_flag;
            push(out, v);
            if double_pump {
                let mut v2 = VInst::new(
                    MacroOpcode::Store,
                    None,
                    VOp::Reg(hi(i.src1, new_vreg)),
                    VOp::None,
                );
                let mut m = VMem::from_addr(&addr, loc);
                m.disp_bytes = m.disp_bytes.max(1);
                v2.mem = Some(m);
                v2.mem_role = MemRole::Dst;
                push(out, v2);
            }
        }
        IrOp::Select => {
            // mov dst, b ; cmov dst, a (flags from the preceding cmp,
            // dependence carried via the condition register source).
            let cond = i.pred.map(|(c, _)| c).unwrap_or(i.src2);
            let mut mv = VInst::new(MacroOpcode::Mov, dst, s2, VOp::None);
            mv.wide = wide_flag;
            mv.pred = None;
            out.push(mv);
            let mut cm = VInst::new(MacroOpcode::Cmov, dst, s1, VOp::Reg(cond));
            cm.wide = wide_flag;
            cm.pred = None; // cmov *is* partial predication, legal everywhere
            out.push(cm);
        }
    }
}

/// Folds single-use loads into memory-source ALU operands and single-use
/// ALU results into memory-destination forms (x86 complexity only).
fn fold_memory_operands(func: &mut VFunction) {
    // Global def/use counts.
    let mut defs: HashMap<VReg, u32> = HashMap::new();
    let mut uses: HashMap<VReg, u32> = HashMap::new();
    for b in &func.blocks {
        for v in &b.insts {
            if let Some(d) = v.def() {
                *defs.entry(d).or_default() += 1;
            }
            for u in v.uses() {
                *uses.entry(u).or_default() += 1;
            }
        }
        if let Terminator::Branch { cond, .. } = b.term {
            *uses.entry(cond).or_default() += 1;
        }
    }

    for b in &mut func.blocks {
        // Load folding: Load v <- [m]; ...; Alu d <- x, v  =>
        // Alu d <- x, [m]   (v single-def single-use, same block,
        // matching predicates).
        let mut i = 0;
        while i < b.insts.len() {
            let inst = b.insts[i];
            if inst.opcode == MacroOpcode::Load && !inst.wide {
                if let Some(v) = inst.def() {
                    if defs.get(&v) == Some(&1) && uses.get(&v) == Some(&1) {
                        // Find the unique consumer within the next few
                        // instructions of this block.
                        let window = (i + 1)..b.insts.len().min(i + 9);
                        if let Some(j) = window.clone().find(|&j| {
                            let c = &b.insts[j];
                            matches!(
                                c.opcode,
                                MacroOpcode::IntAlu
                                    | MacroOpcode::IntMul
                                    | MacroOpcode::FpAlu
                                    | MacroOpcode::FpMul
                                    | MacroOpcode::VecAlu
                            ) && c.mem.is_none()
                                && c.pred == inst.pred
                                && (c.src1 == VOp::Reg(v) || c.src2 == VOp::Reg(v))
                        }) {
                            let mem = inst.mem;
                            let c = &mut b.insts[j];
                            // Keep the remaining register source in src1.
                            if c.src1 == VOp::Reg(v) {
                                c.src1 = c.src2;
                            }
                            c.src2 = VOp::None;
                            c.mem = mem;
                            c.mem_role = MemRole::Src;
                            b.insts.remove(i);
                            continue; // re-examine index i
                        }
                    }
                }
            }
            i += 1;
        }

        // Store folding: Alu v <- x, y; Store [m] <- v  =>
        // Alu [m] <- x, y  (v single-def single-use, adjacent-ish).
        let mut i = 0;
        while i + 1 < b.insts.len() {
            let inst = b.insts[i];
            let foldable_op =
                matches!(inst.opcode, MacroOpcode::IntAlu) && inst.mem.is_none() && !inst.wide;
            if foldable_op {
                if let Some(v) = inst.def() {
                    if defs.get(&v) == Some(&1) && uses.get(&v) == Some(&1) {
                        let window = (i + 1)..b.insts.len().min(i + 5);
                        if let Some(j) = window.clone().find(|&j| {
                            let s = &b.insts[j];
                            s.opcode == MacroOpcode::Store
                                && s.pred == inst.pred
                                && s.src1 == VOp::Reg(v)
                                && !s.wide
                        }) {
                            let mem = b.insts[j].mem;
                            b.insts.remove(j);
                            let c = &mut b.insts[i];
                            c.mem = mem;
                            c.mem_role = MemRole::Dst;
                            c.dst = None;
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BlockId, BranchBehavior, IrBlock, VectorizableHint};
    use cisa_isa::feature_set::{Predication, RegisterDepth};

    fn fs(c: Complexity, w: RegisterWidth) -> FeatureSet {
        FeatureSet::new(c, w, RegisterDepth::D16, Predication::Partial).unwrap()
    }

    /// load t <- [p]; add s <- s, t; store [q] <- s2; ret
    fn mem_chain() -> IrFunction {
        let mut f = IrFunction::new("chain");
        let p = f.new_vreg();
        let q = f.new_vreg();
        let s = f.new_vreg();
        let t = f.new_vreg();
        let u = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 10.0);
        b.insts.push(IrInst::load(
            t,
            AddrExpr::base_disp(p, 8),
            MemLocality::Stream,
        ));
        b.insts.push(IrInst::compute(IrOp::IntAlu, s, s, t));
        b.insts.push(IrInst::compute(IrOp::IntAlu, u, s, p));
        b.insts
            .push(IrInst::store(u, AddrExpr::base(q), MemLocality::Stream));
        f.add_block(b);
        f.validate().unwrap();
        f
    }

    #[test]
    fn microx86_keeps_explicit_loads() {
        let v = select(&mem_chain(), &fs(Complexity::MicroX86, RegisterWidth::W32));
        let ops: Vec<_> = v.blocks[0].insts.iter().map(|i| i.opcode).collect();
        assert_eq!(
            ops,
            vec![
                MacroOpcode::Load,
                MacroOpcode::IntAlu,
                MacroOpcode::IntAlu,
                MacroOpcode::Store
            ]
        );
        assert!(
            v.blocks[0].insts.iter().all(|i| i.uop_count() == 1),
            "microx86 is 1:1"
        );
    }

    #[test]
    fn x86_folds_loads_and_stores() {
        let v = select(&mem_chain(), &FeatureSet::x86_64());
        let b = &v.blocks[0];
        // Load folded into the first ALU; store folded into the second.
        assert_eq!(b.insts.len(), 2);
        assert_eq!(b.insts[0].mem_role, MemRole::Src);
        assert_eq!(b.insts[0].uop_count(), 2);
        assert_eq!(b.insts[1].mem_role, MemRole::Dst);
        assert_eq!(b.insts[1].uop_count(), 3);
        // Same micro-op totals, fewer macro-ops.
        let micro_uops: usize = select(&mem_chain(), &fs(Complexity::MicroX86, RegisterWidth::W32))
            .blocks[0]
            .insts
            .iter()
            .map(|i| i.uop_count())
            .sum();
        let x86_uops: usize = b.insts.iter().map(|i| i.uop_count()).sum();
        assert!(x86_uops >= micro_uops, "folding never reduces uops");
        assert_eq!(x86_uops, 5);
    }

    #[test]
    fn multiply_used_load_not_folded() {
        let mut f = IrFunction::new("multi");
        let p = f.new_vreg();
        let t = f.new_vreg();
        let a = f.new_vreg();
        let b2 = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        b.insts
            .push(IrInst::load(t, AddrExpr::base(p), MemLocality::Stream));
        b.insts.push(IrInst::compute(IrOp::IntAlu, a, t, t));
        b.insts.push(IrInst::compute(IrOp::IntAlu, b2, t, a));
        f.add_block(b);
        let v = select(&f, &FeatureSet::x86_64());
        assert_eq!(v.blocks[0].insts.len(), 3, "two uses: load must stay");
    }

    #[test]
    fn vectorizable_block_compiles_to_simd_under_sse() {
        let mut f = IrFunction::new("vec");
        let p = f.new_vreg();
        let x = f.new_vreg();
        let y = f.new_vreg();
        let mut b = IrBlock::new(
            Terminator::Branch {
                cond: x,
                taken: BlockId(0),
                not_taken: BlockId(1),
                behavior: BranchBehavior::loop_back(64),
            },
            64.0,
        );
        b.vectorizable = Some(VectorizableHint { lanes: 4 });
        b.insts
            .push(IrInst::load(x, AddrExpr::base(p), MemLocality::Stream));
        b.insts.push(IrInst::compute(IrOp::FpAlu, y, x, x));
        b.insts
            .push(IrInst::store(y, AddrExpr::base(p), MemLocality::Stream));
        f.add_block(b);
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        f.validate().unwrap();

        let sse = select(&f, &FeatureSet::x86_64());
        assert!(sse.blocks[0].vectorized);
        assert!(
            (sse.blocks[0].weight - 16.0).abs() < 1e-9,
            "64 iters / 4 lanes"
        );
        assert!(sse.blocks[0]
            .insts
            .iter()
            .any(|i| i.opcode == MacroOpcode::VecAlu));

        let scalar = select(&f, &fs(Complexity::MicroX86, RegisterWidth::W32));
        assert!(!scalar.blocks[0].vectorized);
        assert_eq!(scalar.blocks[0].weight, 64.0);
        assert!(scalar.blocks[0]
            .insts
            .iter()
            .all(|i| i.opcode != MacroOpcode::VecAlu));
    }

    #[test]
    fn wide_ops_double_pump_on_32bit() {
        let mut f = IrFunction::new("wide");
        let a = f.new_vreg();
        let b2 = f.new_vreg();
        let c = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        b.insts.push(IrInst::compute(IrOp::IntAlu, c, a, b2).wide());
        f.add_block(b);

        let narrow = select(&f, &fs(Complexity::MicroX86, RegisterWidth::W32));
        assert_eq!(narrow.blocks[0].insts.len(), 2, "lo + hi halves");
        assert!(
            narrow.vreg_count > f.vreg_count,
            "hi-half registers allocated"
        );

        let wide = select(&f, &FeatureSet::x86_64());
        assert_eq!(wide.blocks[0].insts.len(), 1);
        assert!(wide.blocks[0].insts[0].wide, "REX.W set on 64-bit targets");
    }

    #[test]
    fn wide_loads_double_on_32bit() {
        let mut f = IrFunction::new("wload");
        let p = f.new_vreg();
        let d = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        b.insts
            .push(IrInst::load(d, AddrExpr::base(p), MemLocality::WorkingSet).wide());
        b.insts
            .push(IrInst::store(d, AddrExpr::base(p), MemLocality::WorkingSet).wide());
        f.add_block(b);
        let narrow = select(&f, &fs(Complexity::X86, RegisterWidth::W32));
        let loads = narrow.blocks[0]
            .insts
            .iter()
            .filter(|i| i.opcode == MacroOpcode::Load)
            .count();
        let stores = narrow.blocks[0]
            .insts
            .iter()
            .filter(|i| i.opcode == MacroOpcode::Store)
            .count();
        assert_eq!((loads, stores), (2, 2));
    }

    #[test]
    fn select_lowers_to_mov_plus_cmov() {
        let mut f = IrFunction::new("sel");
        let c = f.new_vreg();
        let a = f.new_vreg();
        let b2 = f.new_vreg();
        let d = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        let mut sel = IrInst::compute(IrOp::Select, d, a, b2);
        sel.pred = Some((c, false));
        b.insts.push(sel);
        f.add_block(b);
        let v = select(&f, &FeatureSet::x86_64());
        let ops: Vec<_> = v.blocks[0].insts.iter().map(|i| i.opcode).collect();
        assert_eq!(ops, vec![MacroOpcode::Mov, MacroOpcode::Cmov]);
        // cmov's predication is implicit: no full-predication guard.
        assert!(v.blocks[0].insts.iter().all(|i| i.pred.is_none()));
    }

    #[test]
    fn predicated_insts_survive_lowering() {
        let mut f = IrFunction::new("pred");
        let c = f.new_vreg();
        let x = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        let mut i = IrInst::compute(IrOp::IntAlu, x, x, c);
        i.pred = Some((c, true));
        b.insts.push(i);
        f.add_block(b);
        let v = select(&f, &FeatureSet::superset());
        assert_eq!(v.blocks[0].insts[0].pred, Some((c, true)));
    }

    #[test]
    fn remat_marks_constants() {
        let mut f = IrFunction::new("const");
        let k = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 1.0);
        b.insts.push(IrInst::constant(k, 4));
        f.add_block(b);
        let v = select(&f, &FeatureSet::x86_64());
        assert_eq!(v.blocks[0].insts[0].remat_imm, Some(4));
    }
}
