//! The compiler's intermediate representation.
//!
//! A deliberately small, LLVM-MachineIR-flavoured IR: functions of basic
//! blocks over an unbounded pool of virtual registers, with explicit
//! loads/stores, profile weights on blocks, and behavioural annotations
//! on branches (needed downstream by the branch-predictor models).
//!
//! The workload generator builds these; every compiler pass consumes and
//! produces them until instruction selection lowers to machine
//! instructions.

use std::fmt;

use cisa_isa::inst::MemLocality;

/// A virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block identifier (index into [`IrFunction::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index form.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Address expression of a memory access: `[base + index + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrExpr {
    /// Base virtual register.
    pub base: VReg,
    /// Optional index register.
    pub index: Option<VReg>,
    /// Displacement in bytes (encodes as disp8 if it fits).
    pub disp: i32,
}

impl AddrExpr {
    /// `[base]`
    pub fn base(base: VReg) -> Self {
        AddrExpr {
            base,
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: VReg, disp: i32) -> Self {
        AddrExpr {
            base,
            index: None,
            disp,
        }
    }

    /// `[base + index + disp]`
    pub fn base_index(base: VReg, index: VReg, disp: i32) -> Self {
        AddrExpr {
            base,
            index: Some(index),
            disp,
        }
    }

    /// Displacement size in bytes when encoded (0, 1, or 4).
    pub fn disp_bytes(&self) -> u8 {
        if self.disp == 0 {
            0
        } else if (-128..=127).contains(&self.disp) {
            1
        } else {
            4
        }
    }
}

/// IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrOp {
    /// Materialize a constant of the given immediate width into `dst`.
    /// Cheap to rematerialize instead of spilling.
    Const {
        /// Immediate width in bytes (1 or 4).
        imm_bytes: u8,
    },
    /// `dst = src1 <alu> src2` — single-cycle integer op.
    IntAlu,
    /// `dst = src1 * src2` — multi-cycle integer op.
    IntMul,
    /// Scalar FP add-class op.
    FpAlu,
    /// Scalar FP multiply-class op.
    FpMul,
    /// `dst = [addr]`.
    Load {
        /// Locality class for the memory model.
        loc: MemLocality,
    },
    /// `[addr] = src1`.
    Store {
        /// Locality class for the memory model.
        loc: MemLocality,
    },
    /// Compare `src1`, `src2`, setting the block's condition.
    Cmp,
    /// `dst = cond ? src1 : src2` — lowers to CMOV under partial
    /// predication.
    Select,
}

/// One IR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IrInst {
    /// Operation.
    pub op: IrOp,
    /// Destination register ([`IrInst::NONE`] when absent).
    pub dst: VReg,
    /// First source ([`IrInst::NONE`] when absent).
    pub src1: VReg,
    /// Second source ([`IrInst::NONE`] when absent).
    pub src2: VReg,
    /// Address expression for `Load`/`Store`.
    pub addr: Option<AddrExpr>,
    /// Whether the op manipulates 64-bit data (pays double-pumped
    /// emulation on 32-bit cores).
    pub wide: bool,
    /// Full-predication guard: `(condition, negated)`. Set by the
    /// if-conversion pass; only legal when the target supports full
    /// predication.
    pub pred: Option<(VReg, bool)>,
}

impl IrInst {
    /// Sentinel register meaning "no register in this slot".
    pub const NONE: VReg = VReg(u32::MAX);

    /// Builds a register-to-register compute op.
    pub fn compute(op: IrOp, dst: VReg, src1: VReg, src2: VReg) -> Self {
        IrInst {
            op,
            dst,
            src1,
            src2,
            addr: None,
            wide: false,
            pred: None,
        }
    }

    /// Builds a constant materialization.
    pub fn constant(dst: VReg, imm_bytes: u8) -> Self {
        IrInst {
            op: IrOp::Const { imm_bytes },
            dst,
            src1: Self::NONE,
            src2: Self::NONE,
            addr: None,
            wide: false,
            pred: None,
        }
    }

    /// Builds a load.
    pub fn load(dst: VReg, addr: AddrExpr, loc: MemLocality) -> Self {
        IrInst {
            op: IrOp::Load { loc },
            dst,
            src1: Self::NONE,
            src2: Self::NONE,
            addr: Some(addr),
            wide: false,
            pred: None,
        }
    }

    /// Builds a store.
    pub fn store(src: VReg, addr: AddrExpr, loc: MemLocality) -> Self {
        IrInst {
            op: IrOp::Store { loc },
            dst: Self::NONE,
            src1: src,
            src2: Self::NONE,
            addr: Some(addr),
            wide: false,
            pred: None,
        }
    }

    /// Marks the instruction as 64-bit data (builder style).
    #[must_use]
    pub fn wide(mut self) -> Self {
        self.wide = true;
        self
    }

    /// Iterator over source virtual registers (including address
    /// components).
    pub fn uses(&self) -> impl Iterator<Item = VReg> + '_ {
        [
            self.src1,
            self.src2,
            self.addr.map_or(Self::NONE, |a| a.base),
            self.addr.and_then(|a| a.index).unwrap_or(Self::NONE),
            self.pred.map_or(Self::NONE, |(p, _)| p),
        ]
        .into_iter()
        .filter(|&v| v != Self::NONE)
    }

    /// The defined register, if any.
    pub fn def(&self) -> Option<VReg> {
        (self.dst != Self::NONE).then_some(self.dst)
    }

    /// Whether this is a memory access.
    pub fn is_mem(&self) -> bool {
        matches!(self.op, IrOp::Load { .. } | IrOp::Store { .. })
    }
}

/// Behavioural class of a conditional branch; drives the predictor
/// models downstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchPattern {
    /// Loop back-edge taken `trip-1` times then not taken; almost
    /// perfectly predictable.
    LoopBack {
        /// Mean trip count of the loop.
        trip: u32,
    },
    /// Heavily biased data-dependent branch.
    Biased,
    /// Short repeating pattern, predictable with local history.
    Periodic {
        /// Period length in branch executions.
        period: u8,
    },
    /// Data-dependent with little structure (sjeng/gobmk-like).
    Random,
}

/// Branch behaviour annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchBehavior {
    /// Long-run probability the branch is taken.
    pub taken_prob: f64,
    /// Temporal structure.
    pub pattern: BranchPattern,
}

impl BranchBehavior {
    /// A loop back-edge with the given trip count.
    pub fn loop_back(trip: u32) -> Self {
        BranchBehavior {
            taken_prob: 1.0 - 1.0 / trip.max(1) as f64,
            pattern: BranchPattern::LoopBack { trip },
        }
    }

    /// A biased branch taken with probability `p`.
    pub fn biased(p: f64) -> Self {
        BranchBehavior {
            taken_prob: p,
            pattern: BranchPattern::Biased,
        }
    }

    /// An unstructured data-dependent branch taken with probability `p`.
    pub fn random(p: f64) -> Self {
        BranchBehavior {
            taken_prob: p,
            pattern: BranchPattern::Random,
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Terminator {
    /// Conditional branch on the block's condition (set by a `Cmp`).
    Branch {
        /// Condition register (source of the controlling `Cmp`).
        cond: VReg,
        /// Target when taken.
        taken: BlockId,
        /// Fall-through when not taken.
        not_taken: BlockId,
        /// Behaviour annotation.
        behavior: BranchBehavior,
    },
    /// Unconditional jump.
    Jump(BlockId),
    /// Function return.
    Ret,
}

impl Terminator {
    /// Successor block ids.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![taken, not_taken],
            Terminator::Jump(t) => vec![t],
            Terminator::Ret => vec![],
        }
    }
}

/// SIMD-candidate annotation on a block: the generator marks loop bodies
/// whose operations vectorize at the given lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorizableHint {
    /// Lane count (4 for SSE2 over f32/i32).
    pub lanes: u8,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct IrBlock {
    /// Instructions in order.
    pub insts: Vec<IrInst>,
    /// Terminator.
    pub term: Terminator,
    /// Profile weight: expected executions per invocation of the
    /// enclosing phase unit.
    pub weight: f64,
    /// Loop nesting depth (0 = not in a loop).
    pub loop_depth: u32,
    /// SIMD candidate hint.
    pub vectorizable: Option<VectorizableHint>,
}

impl IrBlock {
    /// An empty block with the given terminator and weight.
    pub fn new(term: Terminator, weight: f64) -> Self {
        IrBlock {
            insts: Vec::new(),
            term,
            weight,
            loop_depth: 0,
            vectorizable: None,
        }
    }
}

/// A function: the unit of compilation. One phase of one benchmark
/// compiles to one function.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    /// Human-readable name (`benchmark.phaseN`).
    pub name: String,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<IrBlock>,
    /// Number of virtual registers in use (ids are `0..vreg_count`).
    pub vreg_count: u32,
}

impl IrFunction {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> Self {
        IrFunction {
            name: name.into(),
            blocks: Vec::new(),
            vreg_count: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let v = VReg(self.vreg_count);
        self.vreg_count += 1;
        v
    }

    /// Appends a block, returning its id.
    pub fn add_block(&mut self, block: IrBlock) -> BlockId {
        self.blocks.push(block);
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Predecessor map (by block index).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.idx()].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Total dynamic IR instruction count (profile-weighted).
    pub fn dynamic_inst_count(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| b.weight * (b.insts.len() as f64 + 1.0)) // +1 terminator
            .sum()
    }

    /// Validates structural invariants: successor ids in range, every
    /// use of a vreg within `vreg_count`, weights nonnegative, at least
    /// one `Ret`-terminated block reachable.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("function has no blocks".into());
        }
        let n = self.blocks.len() as u32;
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.0 >= n {
                    return Err(format!("bb{i} branches to out-of-range {s}"));
                }
            }
            if b.weight < 0.0 {
                return Err(format!("bb{i} has negative weight"));
            }
            for inst in &b.insts {
                for u in inst.uses() {
                    if u.0 >= self.vreg_count {
                        return Err(format!("bb{i} uses out-of-range {u}"));
                    }
                }
                if let Some(d) = inst.def() {
                    if d.0 >= self.vreg_count {
                        return Err(format!("bb{i} defines out-of-range {d}"));
                    }
                }
                if inst.is_mem() && inst.addr.is_none() {
                    return Err(format!("bb{i} has a memory op without an address"));
                }
            }
            if let Terminator::Branch { cond, .. } = b.term {
                if cond.0 >= self.vreg_count {
                    return Err(format!("bb{i} branch condition out of range"));
                }
            }
        }
        // Reachability of a Ret.
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![BlockId(0)];
        let mut found_ret = false;
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b.idx()], true) {
                continue;
            }
            let blk = &self.blocks[b.idx()];
            if matches!(blk.term, Terminator::Ret) {
                found_ret = true;
            }
            stack.extend(blk.term.successors());
        }
        if !found_ret {
            return Err("no reachable Ret".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-block function: entry loops on itself then returns.
    fn tiny() -> IrFunction {
        let mut f = IrFunction::new("tiny");
        let a = f.new_vreg();
        let b = f.new_vreg();
        let c = f.new_vreg();
        let mut body = IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(0),
                not_taken: BlockId(1),
                behavior: BranchBehavior::loop_back(100),
            },
            100.0,
        );
        body.insts.push(IrInst::constant(a, 4));
        body.insts.push(IrInst::load(
            b,
            AddrExpr::base_disp(a, 8),
            MemLocality::Stream,
        ));
        body.insts.push(IrInst::compute(IrOp::IntAlu, c, a, b));
        body.loop_depth = 1;
        f.add_block(body);
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        f
    }

    #[test]
    fn tiny_function_validates() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_successor() {
        let mut f = tiny();
        f.blocks[1].term = Terminator::Jump(BlockId(9));
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_vreg() {
        let mut f = tiny();
        f.blocks[0]
            .insts
            .push(IrInst::compute(IrOp::IntAlu, VReg(99), VReg(0), VReg(1)));
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_requires_reachable_ret() {
        let mut f = IrFunction::new("spin");
        f.add_block(IrBlock::new(Terminator::Jump(BlockId(0)), 1.0));
        assert!(f.validate().is_err());
    }

    #[test]
    fn uses_and_defs() {
        let i = IrInst::load(
            VReg(3),
            AddrExpr::base_index(VReg(1), VReg(2), 4),
            MemLocality::Stack,
        );
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![VReg(1), VReg(2)]);
        assert_eq!(i.def(), Some(VReg(3)));
        let s = IrInst::store(VReg(4), AddrExpr::base(VReg(5)), MemLocality::Stack);
        assert_eq!(s.uses().collect::<Vec<_>>(), vec![VReg(4), VReg(5)]);
        assert_eq!(s.def(), None);
    }

    #[test]
    fn dynamic_count_weights_blocks() {
        let f = tiny();
        // bb0: 3 insts + term, weight 100; bb1: 0 + term, weight 1.
        assert!((f.dynamic_inst_count() - (100.0 * 4.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn loop_back_behavior_probability() {
        let b = BranchBehavior::loop_back(100);
        assert!((b.taken_prob - 0.99).abs() < 1e-12);
        let one = BranchBehavior::loop_back(1);
        assert_eq!(one.taken_prob, 0.0);
    }

    #[test]
    fn addr_disp_bytes() {
        assert_eq!(AddrExpr::base(VReg(0)).disp_bytes(), 0);
        assert_eq!(AddrExpr::base_disp(VReg(0), 8).disp_bytes(), 1);
        assert_eq!(AddrExpr::base_disp(VReg(0), -100).disp_bytes(), 1);
        assert_eq!(AddrExpr::base_disp(VReg(0), 4096).disp_bytes(), 4);
    }

    #[test]
    fn predecessors_follow_edges() {
        let f = tiny();
        let preds = f.predecessors();
        assert_eq!(preds[0], vec![BlockId(0)]); // self loop
        assert_eq!(preds[1], vec![BlockId(0)]);
    }
}
