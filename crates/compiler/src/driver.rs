//! The compile driver: runs the full pass pipeline for one function and
//! one target feature set.
//!
//! Pipeline (Section IV-A):
//!
//! 1. validate the IR,
//! 2. **if-conversion** when the target supports full predication (as a
//!    pre-scheduling pass, mirroring the paper's placement),
//! 3. **instruction selection** (complexity folding, SIMD vs scalarized,
//!    wide-data double-pumping),
//! 4. **register allocation** at the target's register depth (spills,
//!    refills, rematerialization),
//! 5. encoding and statistics.
//!
//! When [`CompileOptions::verify`] is enabled (the default in debug
//! builds and tests), the staged verifier from [`crate::verify`] runs
//! after every phase and the compile fails with
//! [`CompileError::Verify`] on any violation.

use cisa_isa::{FeatureSet, Predication};
use std::fmt;

use crate::code::{finalize, CompiledCode};
use crate::ifconvert::{if_convert, IfConvertConfig, IfConvertStats};
use crate::ir::IrFunction;
use crate::isel::select;
use crate::regalloc::allocate;
use crate::verify::{self, VerifyError, VerifyLevel};

/// Options controlling a compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// If-conversion profitability knobs (used only when the target has
    /// full predication).
    pub ifconvert: IfConvertConfig,
    /// Staged verification after each pipeline phase. Defaults to
    /// `Full` in debug builds and tests, `Off` in release.
    pub verify: VerifyLevel,
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The input IR failed validation.
    InvalidIr(String),
    /// The staged verifier found violations after some phase.
    Verify(Vec<VerifyError>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidIr(msg) => write!(f, "invalid IR: {msg}"),
            CompileError::Verify(violations) => {
                write!(f, "verification failed: {} violation(s)", violations.len())?;
                if let Some(first) = violations.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles one function for one feature set.
///
/// # Errors
///
/// Returns [`CompileError::InvalidIr`] if the function fails
/// [`IrFunction::validate`].
///
/// # Example
///
/// ```
/// use cisa_compiler::ir::*;
/// use cisa_compiler::compile;
/// use cisa_isa::FeatureSet;
///
/// let mut f = IrFunction::new("demo");
/// let v = f.new_vreg();
/// let mut b = IrBlock::new(Terminator::Ret, 1.0);
/// b.insts.push(IrInst::constant(v, 4));
/// f.add_block(b);
///
/// let code = compile(&f, &FeatureSet::x86_64(), &Default::default())?;
/// assert!(code.stats.total_uops() > 0.0);
/// # Ok::<(), cisa_compiler::CompileError>(())
/// ```
pub fn compile(
    func: &IrFunction,
    fs: &FeatureSet,
    options: &CompileOptions,
) -> Result<CompiledCode, CompileError> {
    let _compile = cisa_obs::span("compile");
    cisa_obs::counter("compile/functions", 1);
    {
        let _s = cisa_obs::span("validate");
        func.validate().map_err(CompileError::InvalidIr)?;
    }

    let checked = options.verify.enabled();
    let mut violations = Vec::new();
    if checked {
        let _s = cisa_obs::span("verify");
        violations.extend(verify::verify_ir(func));
    }

    let mut ir = func.clone();
    let ifc_stats = if fs.predication() == Predication::Full {
        let stats = {
            let _s = cisa_obs::span("ifconvert");
            if_convert(&mut ir, &options.ifconvert)
        };
        if checked {
            let _s = cisa_obs::span("verify");
            violations.extend(verify::verify_ir(&ir));
            violations.extend(verify::verify_predication(&ir, fs));
        }
        stats
    } else {
        IfConvertStats::default()
    };
    cisa_obs::counter("compile/ifconverted_diamonds", u64::from(ifc_stats.total()));

    let vfunc = {
        let _s = cisa_obs::span("isel");
        select(&ir, fs)
    };
    if checked {
        let _s = cisa_obs::span("verify");
        violations.extend(verify::verify_isel(&vfunc, fs));
    }
    let alloc = {
        let _s = cisa_obs::span("regalloc");
        allocate(&vfunc, fs)
    };
    if checked {
        let _s = cisa_obs::span("verify");
        violations.extend(verify::verify_regalloc(&alloc, fs));
    }
    let regalloc_stats = alloc.stats;

    let blocks = alloc
        .blocks
        .into_iter()
        .map(|b| (b.insts, b.term, b.weight, b.vectorized))
        .collect();

    let code = {
        let _s = cisa_obs::span("emit");
        finalize(func.name.clone(), *fs, blocks, regalloc_stats, ifc_stats)
    };
    cisa_obs::counter(
        "compile/vectorized_blocks",
        code.blocks.iter().filter(|b| b.vectorized).count() as u64,
    );
    if checked {
        let _s = cisa_obs::span("verify");
        violations.extend(verify::verify_encoding(&code));
    }
    if !violations.is_empty() {
        return Err(CompileError::Verify(violations));
    }
    Ok(code)
}

/// Compiles one function for every one of the 26 feature sets, returning
/// the results in [`FeatureSet::all`] order. Used by the design-space
/// exploration.
pub fn compile_all_feature_sets(
    func: &IrFunction,
    options: &CompileOptions,
) -> Result<Vec<CompiledCode>, CompileError> {
    FeatureSet::all()
        .iter()
        .map(|fs| compile(func, fs, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AddrExpr, BlockId, BranchBehavior, IrBlock, IrInst, IrOp, Terminator};
    use cisa_isa::inst::MemLocality;
    use cisa_isa::uop::MicroOpKind;

    /// A function with a hot loop containing an unpredictable diamond.
    fn branchy() -> IrFunction {
        let mut f = IrFunction::new("branchy");
        let ptr = f.new_vreg();
        let i = f.new_vreg();
        let c = f.new_vreg();
        let x = f.new_vreg();
        let c2 = f.new_vreg();

        // bb0: loop body, diamond head.
        let mut head = IrBlock::new(
            Terminator::Branch {
                cond: c,
                taken: BlockId(1),
                not_taken: BlockId(2),
                behavior: BranchBehavior::random(0.5),
            },
            100.0,
        );
        head.insts.push(IrInst::load(
            x,
            AddrExpr::base(ptr),
            MemLocality::WorkingSet,
        ));
        head.insts.push(IrInst::compute(IrOp::Cmp, c, x, i));
        f.add_block(head);
        // bb1 / bb2: small arms.
        let mut t = IrBlock::new(Terminator::Jump(BlockId(3)), 50.0);
        t.insts.push(IrInst::compute(IrOp::IntAlu, x, x, i));
        f.add_block(t);
        let mut e = IrBlock::new(Terminator::Jump(BlockId(3)), 50.0);
        e.insts.push(IrInst::compute(IrOp::IntAlu, x, i, i));
        f.add_block(e);
        // bb3: loop latch.
        let mut latch = IrBlock::new(
            Terminator::Branch {
                cond: c2,
                taken: BlockId(0),
                not_taken: BlockId(4),
                behavior: BranchBehavior::loop_back(100),
            },
            100.0,
        );
        latch.insts.push(IrInst::compute(IrOp::IntAlu, i, i, x));
        latch.insts.push(IrInst::compute(IrOp::Cmp, c2, i, x));
        f.add_block(latch);
        f.add_block(IrBlock::new(Terminator::Ret, 1.0));
        f.validate().unwrap();
        f
    }

    #[test]
    fn full_predication_removes_branches_and_adds_uops() {
        let f = branchy();
        let opts = CompileOptions::default();
        let partial = compile(&f, &FeatureSet::x86_64(), &opts).unwrap();
        let full = compile(&f, &FeatureSet::superset(), &opts).unwrap();
        assert!(full.stats.ifconvert.total() > 0, "diamond must convert");
        assert!(
            full.stats.branches() < partial.stats.branches(),
            "predication removes dynamic branches: {} vs {}",
            full.stats.branches(),
            partial.stats.branches()
        );
        assert!(full.stats.predicated > 0.0);
        assert!(
            full.stats.total_uops() >= partial.stats.total_uops() * 0.99,
            "if-conversion does not shrink uops"
        );
    }

    #[test]
    fn microx86_has_more_macro_ops_than_x86() {
        let f = branchy();
        let opts = CompileOptions::default();
        let micro = compile(&f, &"microx86-16D-32W".parse().unwrap(), &opts).unwrap();
        let x86 = compile(&f, &"x86-16D-32W".parse().unwrap(), &opts).unwrap();
        assert!(
            micro.stats.macro_ops >= x86.stats.macro_ops,
            "x86 folding reduces macro-ops"
        );
        // microx86 legality: every inst is single-uop.
        for b in &micro.blocks {
            for i in &b.insts {
                assert_eq!(i.uop_count(), 1);
            }
        }
    }

    #[test]
    fn all_26_feature_sets_compile() {
        let f = branchy();
        let all = compile_all_feature_sets(&f, &CompileOptions::default()).unwrap();
        assert_eq!(all.len(), 26);
        for code in &all {
            assert!(
                code.stats.total_uops() > 0.0,
                "{} produced no code",
                code.fs
            );
            assert!(code.stats.code_bytes > 0);
            // Every instruction must be legal under its own target.
            for b in &code.blocks {
                for inst in &b.insts {
                    assert!(
                        inst.legal_under(&code.fs),
                        "{inst} illegal under {}",
                        code.fs
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_ir_is_rejected() {
        let f = IrFunction::new("empty");
        assert!(matches!(
            compile(&f, &FeatureSet::x86_64(), &CompileOptions::default()),
            Err(CompileError::InvalidIr(_))
        ));
    }

    #[test]
    fn loads_shrink_with_register_depth() {
        // High-pressure function: deeper register files must reduce
        // dynamic loads (spill refills).
        let mut f = IrFunction::new("hot");
        let base = f.new_vreg();
        let mut b = IrBlock::new(Terminator::Ret, 100.0);
        let mut vals = Vec::new();
        for k in 0..24 {
            let v = f.new_vreg();
            b.insts.push(IrInst::load(
                v,
                AddrExpr::base_disp(base, k * 8),
                MemLocality::WorkingSet,
            ));
            vals.push(v);
        }
        let mut acc = f.new_vreg();
        b.insts.push(IrInst::constant(acc, 1));
        for &v in &vals {
            let nv = f.new_vreg();
            b.insts.push(IrInst::compute(IrOp::IntAlu, nv, acc, v));
            acc = nv;
        }
        f.add_block(b);

        let opts = CompileOptions::default();
        let d8 = compile(&f, &"microx86-8D-32W".parse().unwrap(), &opts).unwrap();
        let d64 = compile(&f, &"microx86-64D-32W".parse().unwrap(), &opts).unwrap();
        assert!(
            d8.stats.loads() > d64.stats.loads(),
            "shallow depth refills more: {} vs {}",
            d8.stats.loads(),
            d64.stats.loads()
        );
        assert!(d8.stats.uop(MicroOpKind::Store) >= d64.stats.uop(MicroOpKind::Store));
    }
}
