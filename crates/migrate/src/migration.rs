//! Migration-cost replay for multiprogrammed schedules (Section VII-D,
//! Figure 15).
//!
//! Threads contend for the cores of their preference, so on every phase
//! change the scheduler may reshuffle the thread-to-core assignment.
//! Each move charges a fixed migration cost (context + cache warmup),
//! and when a thread lands on a core that does not cover its binary's
//! compiled feature set, the next interval pays the measured downgrade
//! emulation cost. Composite-ISA migrations are cheap because upgrades
//! are free and downgrades are local transformations; the multi-vendor
//! baseline pays full cross-ISA binary translation instead.

use std::collections::HashMap;

use cisa_explore::multicore::{permute4, CoreChoice, Evaluator};
use cisa_isa::feature_set::DowngradeGap;
use cisa_isa::FeatureSet;
use cisa_workloads::all_benchmarks;
#[cfg(test)]
use cisa_workloads::all_phases;

use crate::downgrade::downgrade_cost;
use crate::error::MigrateError;

/// Knobs of the migration replay.
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Cycles charged per migration within the composite-ISA chip
    /// (register state move + cold caches).
    pub migration_cycles: f64,
    /// Scheduling steps replayed per workload mix.
    pub steps: usize,
    /// Units of phase work per scheduling interval. SimPoint intervals
    /// are long (hundreds of millions of instructions), so migration
    /// costs amortize over many units of work.
    pub units_per_step: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            migration_cycles: 30_000.0,
            steps: 12,
            units_per_step: 50.0,
        }
    }
}

/// Outcome of a migration replay.
#[derive(Debug, Clone, Default)]
pub struct MigrationReport {
    /// Total migrations across the replay.
    pub migrations: u64,
    /// Migrations that required a feature downgrade, by gap kind.
    pub downgrades: HashMap<&'static str, u64>,
    /// Mean normalized throughput with migration costs ignored.
    pub throughput_free: f64,
    /// Mean normalized throughput with migration + downgrade costs.
    pub throughput_with_costs: f64,
}

impl MigrationReport {
    /// Fractional throughput degradation due to migration costs.
    pub fn degradation(&self) -> f64 {
        if self.throughput_free <= 0.0 {
            0.0
        } else {
            1.0 - self.throughput_with_costs / self.throughput_free
        }
    }

    /// Total downgrade events.
    pub fn total_downgrades(&self) -> u64 {
        self.downgrades.values().sum()
    }
}

fn gap_label(gap: &DowngradeGap) -> &'static str {
    match gap {
        DowngradeGap::RegisterDepth { to, .. } => match to.count() {
            8 => "register depth -> 8",
            16 => "register depth -> 16",
            _ => "register depth -> 32",
        },
        DowngradeGap::RegisterWidth => "64-bit -> 32-bit",
        DowngradeGap::Complexity => "x86 -> microx86",
        DowngradeGap::Predication => "full -> partial predication",
        DowngradeGap::Simd => "vector -> scalar",
    }
}

/// The migration replay engine.
pub struct MigrationSim<'a> {
    eval: &'a Evaluator<'a>,
    config: MigrationConfig,
    /// Cache of measured downgrade costs per (benchmark, from, to).
    cost_cache: HashMap<(usize, FeatureSet, FeatureSet), f64>,
}

impl<'a> MigrationSim<'a> {
    /// Creates a replay over the evaluator's workload mixes.
    pub fn new(eval: &'a Evaluator<'a>, config: MigrationConfig) -> Self {
        MigrationSim {
            eval,
            config,
            cost_cache: HashMap::new(),
        }
    }

    /// The feature set of a core slot.
    fn core_fs(&self, core: &CoreChoice) -> FeatureSet {
        match core {
            CoreChoice::Composite(id) => self.eval.space.feature_sets[id.fs as usize],
            CoreChoice::Vendor(v, _) => v.x86ized(),
        }
    }

    /// The binary's compiled feature set for one benchmark: the most
    /// common per-phase preference on this multicore (the paper
    /// compiles one binary with the most common feature selection).
    pub fn binary_feature_set(&self, bench: usize, cores: &[CoreChoice; 4]) -> FeatureSet {
        let mut votes: HashMap<FeatureSet, u32> = HashMap::new();
        for &p in &self.eval.bench_phases[bench] {
            let best = cores
                .iter()
                .min_by(|a, b| {
                    self.eval
                        .perf(p, a)
                        .cycles_per_unit
                        .partial_cmp(&self.eval.perf(p, b).cycles_per_unit)
                        .expect("finite")
                })
                .expect("four cores");
            *votes.entry(self.core_fs(best)).or_default() += 1;
        }
        // Deterministic tie-break: highest vote count, then the
        // feature-set ordering.
        votes
            .into_iter()
            .max_by_key(|&(fs, n)| (n, fs))
            .map(|(fs, _)| fs)
            .unwrap_or_else(FeatureSet::x86_64)
    }

    fn downgrade_factor(
        &mut self,
        bench: usize,
        from: FeatureSet,
        to: FeatureSet,
    ) -> Result<f64, MigrateError> {
        if to.covers(&from) {
            return Ok(1.0);
        }
        let key = (bench, from, to);
        if let Some(&c) = self.cost_cache.get(&key) {
            return Ok(c);
        }
        // Measure on the benchmark's first phase.
        let bench_id = self.eval.bench_ids[bench] as usize;
        let spec = all_benchmarks()
            .into_iter()
            .nth(bench_id)
            .expect("benchmark exists")
            .phases
            .remove(0);
        let c = downgrade_cost(&spec, from, to)?.max(0.8);
        self.cost_cache.insert(key, c);
        Ok(c)
    }

    /// Replays all workload mixes on a multicore, charging migration and
    /// downgrade costs.
    ///
    /// Fails only if a downgrade-cost measurement fails (a phase that
    /// does not compile — seen only under fault injection); the error
    /// names the phase and feature set.
    pub fn replay(&mut self, cores: &[CoreChoice; 4]) -> Result<MigrationReport, MigrateError> {
        let mut report = MigrationReport::default();
        let combos = self.eval.combos.clone();
        let steps = self.config.steps;
        let binary_fs: Vec<FeatureSet> = (0..self.eval.bench_phases.len())
            .map(|b| self.binary_feature_set(b, cores))
            .collect();

        let mut free_total = 0.0;
        let mut cost_total = 0.0;
        let mut count = 0usize;
        for combo in &combos {
            let mut prev_assign: Option<[usize; 4]> = None;
            for step in 0..steps {
                let phases = combo.map(|b| {
                    let ps = &self.eval.bench_phases[b as usize];
                    ps[step % ps.len()]
                });
                // Best assignment by speed (as the scheduler would).
                let mut best_sum = f64::NEG_INFINITY;
                let mut best_perm = [0usize, 1, 2, 3];
                permute4(|perm| {
                    let sum: f64 = phases
                        .iter()
                        .enumerate()
                        .map(|(t, &p)| {
                            self.eval.ref_time[p]
                                / self.eval.perf(p, &cores[perm[t]]).cycles_per_unit
                        })
                        .sum();
                    if sum > best_sum {
                        best_sum = sum;
                        best_perm = *perm;
                    }
                });

                for (t, &p) in phases.iter().enumerate() {
                    let core = &cores[best_perm[t]];
                    let perf = self.eval.perf(p, core);
                    let free_speed = self.eval.ref_time[p] / perf.cycles_per_unit;
                    free_total += free_speed;

                    let units = self.config.units_per_step;
                    let mut time = perf.cycles_per_unit * units;
                    let moved = prev_assign.is_some_and(|pa| pa[t] != best_perm[t]);
                    if moved {
                        report.migrations += 1;
                        time += self.config.migration_cycles;
                        let bfs = binary_fs[combo[t] as usize];
                        let cfs = self.core_fs(core);
                        if !cfs.covers(&bfs) {
                            for gap in cfs.downgrade_gaps(&bfs) {
                                *report.downgrades.entry(gap_label(&gap)).or_default() += 1;
                            }
                            time *= self.downgrade_factor(combo[t] as usize, bfs, cfs)?;
                        }
                    }
                    cost_total += self.eval.ref_time[p] * units / time;
                    count += 1;
                }
                prev_assign = Some(best_perm);
            }
        }
        report.throughput_free = free_total / count as f64;
        report.throughput_with_costs = cost_total / count as f64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisa_explore::multicore::{search, Budget, Objective, SearchConfig};
    use cisa_explore::{DesignSpace, PerfTable};
    use std::sync::OnceLock;

    fn fixtures() -> &'static (DesignSpace, PerfTable) {
        static CELL: OnceLock<(DesignSpace, PerfTable)> = OnceLock::new();
        CELL.get_or_init(|| {
            let space = DesignSpace::new();
            let phases: Vec<_> = all_phases().into_iter().filter(|p| p.index < 2).collect();
            let table = PerfTable::build_for_phases(&space, &phases);
            (space, table)
        })
    }

    #[test]
    fn migration_degradation_is_small_for_composite() {
        let (space, table) = fixtures();
        let eval = Evaluator::new(space, table, 8);
        let cands: Vec<CoreChoice> = space.ids().map(CoreChoice::Composite).collect();
        let cfg = SearchConfig {
            pool_cap: 70,
            restarts: 1,
            ..Default::default()
        };
        let best = search(
            &eval,
            &cands,
            Objective::Throughput,
            Budget::Area(64.0),
            &cfg,
        )
        .expect("feasible");
        let mut sim = MigrationSim::new(&eval, MigrationConfig::default());
        let report = sim.replay(&best.cores).expect("fault-free replay");
        assert!(report.migrations > 0, "threads must migrate");
        let deg = report.degradation();
        assert!(
            (0.0..0.08).contains(&deg),
            "composite migration degradation should be small: {deg}"
        );
    }

    #[test]
    fn binary_feature_set_is_a_real_set() {
        let (space, table) = fixtures();
        let eval = Evaluator::new(space, table, 4);
        let ref_id = cisa_explore::reference_design(space);
        let cores = [CoreChoice::Composite(ref_id); 4];
        let sim = MigrationSim::new(&eval, MigrationConfig::default());
        let fs = sim.binary_feature_set(0, &cores);
        assert!(FeatureSet::all().contains(&fs));
    }

    #[test]
    fn homogeneous_chip_never_downgrades() {
        let (space, table) = fixtures();
        let eval = Evaluator::new(space, table, 6);
        let ref_id = cisa_explore::reference_design(space);
        let cores = [CoreChoice::Composite(ref_id); 4];
        let mut sim = MigrationSim::new(&eval, MigrationConfig::default());
        let report = sim.replay(&cores).expect("fault-free replay");
        assert_eq!(
            report.total_downgrades(),
            0,
            "identical cores cover everything"
        );
    }
}
