//! Feature-downgrade emulation (Section IV-B, Section VII-D).
//!
//! When a process migrates to a core implementing only a *subset* of
//! the features its code uses, the runtime performs minimal binary
//! translation. Because the feature sets overlap (same opcodes, same
//! encodings), this is a small set of local code transformations, not
//! cross-ISA translation:
//!
//! - **complexity downgrade** (x86 -> microx86): memory-operand compute
//!   instructions are expanded to load-compute-store sequences through
//!   a translator scratch register;
//! - **register-depth downgrade**: architectural registers beyond the
//!   core's depth live in a *register context block* in memory — every
//!   use loads from it, every def stores back;
//! - **width downgrade** (64-bit -> 32-bit): 64-bit data operations are
//!   double-pumped, with fat pointers kept in xmm registers
//!   (long-mode emulation);
//! - **predication downgrade**: predicated instruction runs are
//!   reverse-if-converted back to explicit branches;
//! - **SIMD downgrade**: vector ALU ops are rewritten 1:1 to scalar FP
//!   ops (the trace model restores the per-lane iteration count once
//!   the block loses its `vectorized` flag).
//!
//! [`emulate`] applies the transformations; [`downgrade_cost`] measures
//! the resulting slowdown with the cycle simulator.

use cisa_compiler::{compile, CompileOptions, CompiledBlock, CompiledCode};
use cisa_isa::inst::{MachineInst, MacroOpcode, MemLocality, MemOperand, MemRole, Operand};
use cisa_isa::{ArchReg, FeatureSet, SimdSupport};
use cisa_sim::{simulate, CoreConfig};
use cisa_workloads::{generate, PhaseSpec, TraceGenerator, TraceParams};

use crate::error::MigrateError;

/// Statistics of one emulation transform.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EmulationStats {
    /// Memory-operand instructions expanded (complexity gap).
    pub expanded_mem_ops: u64,
    /// Register accesses redirected to the register context block.
    pub rcb_accesses: u64,
    /// Instructions double-pumped for the width gap.
    pub double_pumped: u64,
    /// Predicated runs converted back to branches.
    pub reverse_if_conversions: u64,
    /// Vector ALU ops rewritten to scalar FP ops (SIMD gap).
    pub scalarized_vec_ops: u64,
}

/// The register context block lives at a fixed hot stack-adjacent
/// address; accesses are `Stack`-class (hot in L1).
fn rcb_mem() -> MemOperand {
    MemOperand::base_disp(ArchReg::gpr(4), 1, MemLocality::Stack)
}

/// Translator scratch registers (always within every depth: r0-r2).
fn scratch(i: usize) -> ArchReg {
    ArchReg::gpr([0u8, 1, 2][i % 3])
}

/// Remaps a register to a scratch if it exceeds the target depth,
/// emitting RCB refills/spills.
fn remap_reg(
    r: ArchReg,
    depth: u32,
    out: &mut Vec<MachineInst>,
    is_def: bool,
    stats: &mut EmulationStats,
    scratch_idx: &mut usize,
) -> ArchReg {
    if (r.index() as u32) < depth {
        return r;
    }
    stats.rcb_accesses += 1;
    let s = scratch(*scratch_idx);
    *scratch_idx += 1;
    if !is_def {
        out.push(MachineInst::load(s, rcb_mem()));
    }
    s
}

/// # Example
///
/// ```
/// use cisa_compiler::{compile, CompileOptions};
/// use cisa_isa::FeatureSet;
/// use cisa_migrate::emulate;
/// use cisa_workloads::{all_phases, generate};
///
/// let code = compile(&generate(&all_phases()[0]), &FeatureSet::superset(),
///                    &CompileOptions::default()).map_err(Box::new)?;
/// // Downgrade to plain x86-64: deep registers move to the register
/// // context block, predicated runs become branches again.
/// let (emulated, stats) = emulate(&code, &FeatureSet::x86_64()).map_err(Box::new)?;
/// assert!(stats.rcb_accesses > 0 || stats.reverse_if_conversions > 0);
/// assert_eq!(emulated.fs, FeatureSet::x86_64());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Applies downgrade emulation so `code` (compiled for its own feature
/// set) can run on a core implementing only `target`. Returns the
/// transformed code and the transform statistics.
///
/// If `target` covers the code's feature set the code is returned
/// unchanged (the zero-cost *upgrade* path). The only failure mode is
/// corrupted input code — a memory-operand instruction whose operand
/// or destination vanishes mid-transform — reported as
/// [`MigrateError::Emulation`] naming the block and instruction.
pub fn emulate(
    code: &CompiledCode,
    target: &FeatureSet,
) -> Result<(CompiledCode, EmulationStats), MigrateError> {
    let mut stats = EmulationStats::default();
    if target.covers(&code.fs) {
        return Ok((code.clone(), stats));
    }
    let depth = target.depth().count();
    let narrow = target.width() < code.fs.width();
    let micro = target.complexity() < code.fs.complexity();
    let strip_pred = target.predication() < code.fs.predication();
    let scalarize = code.fs.simd() == SimdSupport::Sse && target.simd() != SimdSupport::Sse;

    let mut blocks = Vec::with_capacity(code.blocks.len());
    for (bi, b) in code.blocks.iter().enumerate() {
        let mut insts: Vec<MachineInst> = Vec::with_capacity(b.insts.len() * 2);
        let mut prev_pred: Option<(u8, bool)> = None;
        for (ii, inst) in b.insts.iter().enumerate() {
            let mut inst = *inst;

            // Reverse if-conversion: a new predicated run costs one
            // reconstructed branch; the instructions themselves lose
            // their predicate prefix.
            if strip_pred {
                if let Some(p) = inst.predicate {
                    let key = (p.reg.index(), p.negated);
                    if prev_pred != Some(key) {
                        insts.push(MachineInst::branch());
                        stats.reverse_if_conversions += 1;
                    }
                    prev_pred = Some(key);
                    inst.predicate = None;
                } else {
                    prev_pred = None;
                }
            }

            // SIMD downgrade: rewrite vector ALU ops to scalar FP ops
            // 1:1. The trace generator already re-scales iteration
            // counts when a block loses its `vectorized` flag (each
            // iteration covers one lane instead of four), so one scalar
            // op per vector op keeps the dynamic work model consistent.
            if scalarize && inst.opcode == MacroOpcode::VecAlu {
                inst.opcode = MacroOpcode::FpAlu;
                stats.scalarized_vec_ops += 1;
            }

            // Register-depth downgrade through the RCB.
            let mut scratch_idx = 0usize;
            let mut dst_remapped = false;
            if let Some(r) = inst.dst {
                if (r.index() as u32) >= depth {
                    dst_remapped = true;
                }
                inst.dst = Some(remap_reg(
                    r,
                    depth,
                    &mut insts,
                    true,
                    &mut stats,
                    &mut scratch_idx,
                ));
            }
            if let Operand::Reg(r) = inst.src1 {
                inst.src1 = Operand::Reg(remap_reg(
                    r,
                    depth,
                    &mut insts,
                    false,
                    &mut stats,
                    &mut scratch_idx,
                ));
            }
            if let Operand::Reg(r) = inst.src2 {
                inst.src2 = Operand::Reg(remap_reg(
                    r,
                    depth,
                    &mut insts,
                    false,
                    &mut stats,
                    &mut scratch_idx,
                ));
            }
            // A surviving predicate guard (target keeps full
            // predication, only the depth shrank) is a register use
            // like any other and must fit the target depth.
            if let Some(p) = &mut inst.predicate {
                p.reg = remap_reg(
                    p.reg,
                    depth,
                    &mut insts,
                    false,
                    &mut stats,
                    &mut scratch_idx,
                );
            }
            let mut mem = inst.mem;
            if let Some(m) = &mut mem {
                m.base = remap_reg(
                    m.base,
                    depth,
                    &mut insts,
                    false,
                    &mut stats,
                    &mut scratch_idx,
                );
                if let Some(ix) = m.index {
                    m.index = Some(remap_reg(
                        ix,
                        depth,
                        &mut insts,
                        false,
                        &mut stats,
                        &mut scratch_idx,
                    ));
                }
            }
            inst.mem = mem;

            // Width double-pumping (64-bit data on a 32-bit core): the
            // instruction and its expansion products are each emitted
            // twice (lo/hi halves, fat-pointer halves in xmm modelled
            // as a second op on the low file).
            let pump = narrow && inst.wide;
            if pump {
                stats.double_pumped += 1;
                inst.wide = false;
            }
            let copies = if pump { 2 } else { 1 };

            // Complexity downgrade first: expand memory-operand compute
            // forms to load-compute(-store), then double-pump the
            // expanded sequence so the result is microx86-legal even
            // for wide memory-operand instructions.
            if micro
                && inst.mem.is_some()
                && !matches!(inst.opcode, MacroOpcode::Load | MacroOpcode::Store)
            {
                stats.expanded_mem_ops += 1;
                let m = inst.mem.take().ok_or(MigrateError::Emulation {
                    block: bi,
                    index: ii,
                    reason: "memory operand vanished during expansion",
                })?;
                let role = std::mem::replace(&mut inst.mem_role, MemRole::None);
                let s = scratch(2);
                for _ in 0..copies {
                    match role {
                        MemRole::Src => {
                            insts.push(MachineInst::load(s, m));
                            inst.src2 = Operand::Reg(s);
                            insts.push(inst);
                        }
                        MemRole::Dst | MemRole::None => {
                            insts.push(MachineInst::load(s, m));
                            inst.src2 = Operand::Reg(s);
                            inst.dst = Some(s);
                            insts.push(inst);
                            insts.push(MachineInst::store(s, m));
                        }
                    }
                }
                if dst_remapped {
                    insts.push(MachineInst::store(s, rcb_mem()));
                }
                continue;
            }

            for _ in 0..copies {
                insts.push(inst);
            }
            if dst_remapped {
                let dst = inst.dst.ok_or(MigrateError::Emulation {
                    block: bi,
                    index: ii,
                    reason: "remapped destination register vanished",
                })?;
                insts.push(MachineInst::store(dst, rcb_mem()));
            }
        }
        blocks.push(CompiledBlock {
            insts,
            term: b.term,
            weight: b.weight,
            vectorized: b.vectorized && target.simd() == code.fs.simd(),
            code_bytes: b.code_bytes,
        });
    }

    let mut out = code.clone();
    out.blocks = blocks;
    out.fs = *target;
    Ok((out, stats))
}

/// Measures the slowdown of running `spec`'s code compiled for
/// `compiled_for` on a core implementing only `target`, relative to the
/// same code on an unconstrained core of the same microarchitecture.
///
/// Returns `emulated_time / native_time` (1.0 = free; >1 = overhead;
/// <1 = the downgrade helped, as the paper observes for some 64->32-bit
/// cases). A phase that fails to compile for `compiled_for` — possible
/// only under fault injection — surfaces as [`MigrateError::Compile`]
/// naming the phase and feature set.
pub fn downgrade_cost(
    spec: &PhaseSpec,
    compiled_for: FeatureSet,
    target: FeatureSet,
) -> Result<f64, MigrateError> {
    let code =
        compile(&generate(spec), &compiled_for, &CompileOptions::default()).map_err(|source| {
            MigrateError::Compile {
                benchmark: spec.benchmark.to_string(),
                phase: spec.index as usize,
                fs: compiled_for,
                source,
            }
        })?;
    let (emulated, _) = emulate(&code, &target)?;

    let params = TraceParams {
        max_uops: 24_000,
        seed: 0xD04,
    };
    let native_cfg = CoreConfig::reference(compiled_for);
    let native = simulate(&native_cfg, TraceGenerator::new(&code, spec, params));
    let constrained_cfg = CoreConfig::reference(target);
    let emul = simulate(
        &constrained_cfg,
        TraceGenerator::new(&emulated, spec, params),
    );

    // Normalize by work: both traces are uop-capped, so compare
    // cycles-per-unit using each code's dynamic uops per unit.
    let native_cpu = native.cycles as f64 / code.stats.total_uops();
    let emul_cpu = emul.cycles as f64 / emulated.stats.total_uops();
    // The emulated code's *stats* were not recomputed by `emulate`
    // (weights unchanged); scale by the uop expansion observed in the
    // traces instead.
    let expansion = emulated
        .blocks
        .iter()
        .map(|b| b.weight * b.insts.len() as f64)
        .sum::<f64>()
        / code
            .blocks
            .iter()
            .map(|b| b.weight * b.insts.len() as f64)
            .sum::<f64>()
            .max(1e-9);
    Ok((emul_cpu * expansion) / native_cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisa_workloads::all_phases;

    fn spec(bench: &str) -> PhaseSpec {
        all_phases()
            .into_iter()
            .find(|p| p.benchmark == bench)
            .unwrap()
    }

    fn superset_code(bench: &str) -> CompiledCode {
        compile(
            &generate(&spec(bench)),
            &FeatureSet::superset(),
            &CompileOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn upgrade_is_identity() {
        let code = compile(
            &generate(&spec("bzip2")),
            &FeatureSet::minimal(),
            &CompileOptions::default(),
        )
        .unwrap();
        let (out, stats) = emulate(&code, &FeatureSet::superset()).unwrap();
        assert_eq!(stats, EmulationStats::default());
        assert_eq!(out.blocks.len(), code.blocks.len());
    }

    #[test]
    fn depth_downgrade_adds_rcb_traffic() {
        let code = superset_code("hmmer");
        let target: FeatureSet = "x86-16D-64W-P".parse().unwrap();
        let (out, stats) = emulate(&code, &target).unwrap();
        assert!(stats.rcb_accesses > 0, "hmmer uses deep registers");
        let orig: usize = code.blocks.iter().map(|b| b.insts.len()).sum();
        let emul: usize = out.blocks.iter().map(|b| b.insts.len()).sum();
        assert!(emul > orig, "RCB refills must add instructions");
    }

    #[test]
    fn complexity_downgrade_expands_mem_ops() {
        let code = compile(
            &generate(&spec("mcf")),
            &"x86-32D-32W".parse().unwrap(),
            &CompileOptions::default(),
        )
        .unwrap();
        let target: FeatureSet = "microx86-32D-32W".parse().unwrap();
        let (out, stats) = emulate(&code, &target).unwrap();
        assert!(stats.expanded_mem_ops > 0, "mcf folds memory operands");
        for b in &out.blocks {
            for i in &b.insts {
                assert!(
                    i.uop_count() == 1 || matches!(i.opcode, MacroOpcode::Call | MacroOpcode::Ret),
                    "emulated code must be microx86-legal: {i}"
                );
            }
        }
    }

    #[test]
    fn predication_downgrade_restores_branches() {
        let code = superset_code("sjeng");
        let target: FeatureSet = "x86-64D-64W".parse().unwrap();
        let (out, stats) = emulate(&code, &target).unwrap();
        assert!(stats.reverse_if_conversions > 0, "sjeng is predicated");
        for b in &out.blocks {
            for i in &b.insts {
                assert!(i.predicate.is_none(), "no predicates may survive");
            }
        }
    }

    #[test]
    fn wide_mem_operand_forms_expand_and_pump() {
        // Regression: a wide x86 memory-operand compute downgraded to a
        // 32-bit microx86 core must be both expanded (microx86
        // legality) and double-pumped (width emulation).
        let code = compile(
            &generate(&spec("mcf")),
            &"x86-32D-64W".parse().unwrap(),
            &CompileOptions::default(),
        )
        .unwrap();
        let target: FeatureSet = "microx86-32D-32W".parse().unwrap();
        let (out, stats) = emulate(&code, &target).unwrap();
        assert!(stats.expanded_mem_ops > 0);
        for b in &out.blocks {
            for i in &b.insts {
                assert!(
                    i.uop_count() == 1 || matches!(i.opcode, MacroOpcode::Call | MacroOpcode::Ret),
                    "wide folded forms must expand: {i}"
                );
                assert!(!i.wide, "no 64-bit ops may survive a width downgrade: {i}");
            }
        }
    }

    #[test]
    fn width_downgrade_double_pumps() {
        let code = compile(
            &generate(&spec("mcf")),
            &"microx86-32D-64W".parse().unwrap(),
            &CompileOptions::default(),
        )
        .unwrap();
        let target: FeatureSet = "microx86-32D-32W".parse().unwrap();
        let (_, stats) = emulate(&code, &target).unwrap();
        assert!(stats.double_pumped > 0, "mcf has wide data");
    }

    #[test]
    fn simd_downgrade_scalarizes_vector_ops() {
        let code = compile(
            &generate(&spec("lbm")),
            &"x86-32D-32W".parse().unwrap(),
            &CompileOptions::default(),
        )
        .unwrap();
        let has_vec = code
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| i.opcode == MacroOpcode::VecAlu));
        assert!(has_vec, "lbm vectorizes under SSE");
        let target: FeatureSet = "microx86-32D-32W".parse().unwrap();
        let (out, stats) = emulate(&code, &target).unwrap();
        assert!(stats.scalarized_vec_ops > 0, "vector ops must be rewritten");
        for b in &out.blocks {
            assert!(!b.vectorized, "no block may stay vectorized");
            for i in &b.insts {
                assert!(
                    i.legal_under(&target),
                    "illegal instruction after SIMD downgrade: {i}"
                );
            }
        }
    }

    #[test]
    fn depth_downgrade_remaps_predicate_guards() {
        // A depth downgrade that keeps full predication must remap
        // guard registers beyond the target depth like any other use.
        let mut code = superset_code("sjeng");
        let planted = MachineInst::compute(
            MacroOpcode::IntAlu,
            ArchReg::gpr(5),
            Operand::Reg(ArchReg::gpr(6)),
            Operand::None,
        )
        .predicated_on(ArchReg::gpr(40), false);
        code.blocks[0].insts.push(planted);
        let target: FeatureSet = "x86-16D-64W-P".parse().unwrap();
        let (out, stats) = emulate(&code, &target).unwrap();
        assert!(stats.rcb_accesses > 0);
        for b in &out.blocks {
            for i in &b.insts {
                for r in i.registers() {
                    assert!(
                        (r.index() as u32) < 16,
                        "register {r} beyond target depth survives in {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn deep_register_downgrade_costs_more_than_shallow() {
        // Paper: 64->32 registers nearly free, 64->16 ~2.7%, 64->8
        // ~33.5%.
        let s = spec("hmmer");
        let from: FeatureSet = "microx86-64D-32W".parse().unwrap();
        let to32: FeatureSet = "microx86-32D-32W".parse().unwrap();
        let to8: FeatureSet = "microx86-8D-32W".parse().unwrap();
        let c32 = downgrade_cost(&s, from, to32).unwrap();
        let c8 = downgrade_cost(&s, from, to8).unwrap();
        assert!(
            c8 > c32,
            "downgrading to 8 regs ({c8}) must cost more than to 32 ({c32})"
        );
        assert!(c8 > 1.05, "hmmer at depth 8 must pay: {c8}");
    }

    #[test]
    fn x86_to_microx86_cost_is_modest() {
        // Paper: 4.2% on average.
        let s = spec("bzip2");
        let from: FeatureSet = "x86-32D-32W".parse().unwrap();
        let to: FeatureSet = "microx86-32D-32W".parse().unwrap();
        let c = downgrade_cost(&s, from, to).unwrap();
        assert!((0.95..1.35).contains(&c), "complexity downgrade cost {c}");
    }
}
