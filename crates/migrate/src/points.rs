//! Statically-proven migration points.
//!
//! [`crate::classify_migration`] prices a *(compiled-for, target)* pair
//! from feature-set metadata alone, so it must assume the worst: any
//! width gap becomes [`MigrationClass::StateTransforming`], any other
//! gap [`MigrationClass::Transforming`].  The `cisa-analyze` dataflow
//! pass proves tighter facts *per program point*: which registers can
//! still be live, whether any 64-bit value survives across the point,
//! and which feature-dependent instructions remain reachable from it.
//! A [`MigrationPointMap`] carries those residual facts, and
//! [`classify_migration_with`] uses them to refine the conservative
//! class — never in the optimistic-unsafe direction, because the
//! refined class is clamped by `min` against the conservative one and
//! the `analyze_all` sweep cross-checks every pair against the dynamic
//! downgrade machinery.
//!
//! The flagship refinement mirrors Mavrogeorgis et al. (PAPERS.md):
//! a width downgrade only transforms *state* if a 64-bit value is live
//! across the migration point.  At a point where the analyzer proves no
//! wide value survives, remaining wide instructions are repaired by
//! double-pumping — a local binary transformation — so the pair drops
//! from `StateTransforming` to `Transforming` (or all the way to
//! `Native` if the residual code has no wide instructions at all).

use cisa_isa::{DowngradeGap, FeatureSet, RegisterDepth};

use crate::classes::{classify_migration, MigrationClass, MigrationCost};

/// Residual feature facts at one byte offset where migration is safe to
/// consider (in practice: a basic-block entry recovered by CFG
/// analysis).
///
/// Every field describes the code *reachable from* this point and the
/// state *live across* it, as proven by the `cisa-analyze` fixpoints.
/// Conservative producers must over-approximate (set `needs_*` flags
/// they cannot rule out); the classification below only gets cheaper
/// when a flag is provably absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPoint {
    /// Byte offset of the point in the function image.
    pub offset: usize,
    /// Deepest architectural register file any residual instruction
    /// addresses (a target at least this deep needs no register
    /// context block).
    pub needs_depth: RegisterDepth,
    /// Some residual instruction operates on 64-bit values (a narrow
    /// target must double-pump it).
    pub wide_code: bool,
    /// A 64-bit value may be live *across* this point, so a narrow
    /// target must re-represent register state (the expensive part of
    /// a width downgrade).
    pub wide_state: bool,
    /// Some residual instruction is predicated (a partial-predication
    /// target must reverse if-convert).
    pub needs_pred: bool,
    /// Some residual instruction is a vector op (a scalar target must
    /// scalarize).
    pub needs_vec: bool,
    /// Some residual compute instruction carries a memory operand (a
    /// microx86 target must expand it to load-compute-store).
    pub needs_memop: bool,
}

impl MigrationPoint {
    /// The migration class this single point implies for a downgrade
    /// whose conservative feature gaps are `gaps`.
    ///
    /// Each gap contributes only if the residual facts say the gapped
    /// feature is actually in play; the point's class is the costliest
    /// surviving contribution.
    pub fn class_for(&self, gaps: &[DowngradeGap]) -> MigrationClass {
        let mut class = MigrationClass::Native;
        for gap in gaps {
            let contribution = match gap {
                DowngradeGap::RegisterDepth { to, .. } => {
                    if self.needs_depth > *to {
                        MigrationClass::Transforming
                    } else {
                        MigrationClass::Native
                    }
                }
                DowngradeGap::RegisterWidth => {
                    if self.wide_state {
                        MigrationClass::StateTransforming
                    } else if self.wide_code {
                        MigrationClass::Transforming
                    } else {
                        MigrationClass::Native
                    }
                }
                DowngradeGap::Complexity => {
                    if self.needs_memop {
                        MigrationClass::Transforming
                    } else {
                        MigrationClass::Native
                    }
                }
                DowngradeGap::Predication => {
                    if self.needs_pred {
                        MigrationClass::Transforming
                    } else {
                        MigrationClass::Native
                    }
                }
                DowngradeGap::Simd => {
                    if self.needs_vec {
                        MigrationClass::Transforming
                    } else {
                        MigrationClass::Native
                    }
                }
            };
            class = class.max(contribution);
        }
        class
    }
}

/// The migration-point map of one analyzed function: every program
/// point the analyzer admits as a migration candidate, with its
/// residual feature facts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPointMap {
    /// Candidate points in ascending byte-offset order.
    pub points: Vec<MigrationPoint>,
}

impl MigrationPointMap {
    /// The cheapest class any candidate point achieves for migrating
    /// code compiled for `compiled_for` onto `target`, or `None` when
    /// the map is empty (no static evidence — callers fall back to the
    /// conservative class).
    pub fn best_class(
        &self,
        compiled_for: FeatureSet,
        target: FeatureSet,
    ) -> Option<MigrationClass> {
        let gaps = target.downgrade_gaps(&compiled_for);
        self.points.iter().map(|p| p.class_for(&gaps)).min()
    }

    /// The cheapest candidate point itself, paired with its class.
    pub fn best_point(
        &self,
        compiled_for: FeatureSet,
        target: FeatureSet,
    ) -> Option<(&MigrationPoint, MigrationClass)> {
        let gaps = target.downgrade_gaps(&compiled_for);
        self.points
            .iter()
            .map(|p| (p, p.class_for(&gaps)))
            .min_by_key(|&(p, c)| (c, p.offset))
    }
}

/// [`classify_migration`], refined by a static migration-point map when
/// one is available.
///
/// The returned [`MigrationCost::gaps`] are always the conservative
/// feature-set-level gaps (they describe what the *pair* is missing);
/// only the class is refined, and only downward: the result is the
/// `min` of the statically-proven class and the conservative class, so
/// a buggy or empty map can never make a migration look cheaper than
/// the static proof supports nor costlier than the conservative
/// answer.
pub fn classify_migration_with(
    compiled_for: FeatureSet,
    target: FeatureSet,
    map: Option<&MigrationPointMap>,
) -> MigrationCost {
    let base = classify_migration(compiled_for, target);
    let class = match map.and_then(|m| m.best_class(compiled_for, target)) {
        Some(proven) => proven.min(base.class),
        None => base.class,
    };
    MigrationCost { class, ..base }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offset: usize) -> MigrationPoint {
        MigrationPoint {
            offset,
            needs_depth: RegisterDepth::D8,
            wide_code: false,
            wide_state: false,
            needs_pred: false,
            needs_vec: false,
            needs_memop: false,
        }
    }

    #[test]
    fn empty_map_falls_back_to_conservative() {
        let all = FeatureSet::all();
        let empty = MigrationPointMap::default();
        for &from in &all {
            for &to in &all {
                assert_eq!(
                    classify_migration_with(from, to, Some(&empty)),
                    classify_migration(from, to),
                );
                assert_eq!(
                    classify_migration_with(from, to, None),
                    classify_migration(from, to),
                );
            }
        }
    }

    #[test]
    fn refinement_is_never_more_pessimistic() {
        let all = FeatureSet::all();
        let mut p = point(0);
        p.needs_depth = RegisterDepth::D64;
        p.wide_code = true;
        p.wide_state = true;
        p.needs_pred = true;
        p.needs_vec = true;
        p.needs_memop = true;
        let worst = MigrationPointMap { points: vec![p] };
        for &from in &all {
            for &to in &all {
                let refined = classify_migration_with(from, to, Some(&worst));
                let base = classify_migration(from, to);
                assert!(refined.class <= base.class, "{from} -> {to}");
                assert_eq!(refined.gaps, base.gaps);
            }
        }
    }

    #[test]
    fn clean_point_proves_native_everywhere() {
        let all = FeatureSet::all();
        let clean = MigrationPointMap {
            points: vec![point(4)],
        };
        for &from in &all {
            for &to in &all {
                assert_eq!(
                    classify_migration_with(from, to, Some(&clean)).class,
                    MigrationClass::Native,
                    "{from} -> {to}"
                );
            }
        }
    }

    #[test]
    fn dead_wide_state_downgrades_width_gap_to_transforming() {
        let from = FeatureSet::x86_64();
        let to: FeatureSet = "x86-16D-32W".parse().expect("valid name");
        assert_eq!(
            classify_migration(from, to).class,
            MigrationClass::StateTransforming
        );
        let mut p = point(0);
        p.needs_depth = RegisterDepth::D16;
        p.wide_code = true; // residual wide instructions: double-pump
        p.wide_state = false; // but no live 64-bit value across the point
        let map = MigrationPointMap { points: vec![p] };
        assert_eq!(
            classify_migration_with(from, to, Some(&map)).class,
            MigrationClass::Transforming
        );
        // With live wide state the static map agrees with the
        // conservative answer.
        p.wide_state = true;
        let map = MigrationPointMap { points: vec![p] };
        assert_eq!(
            classify_migration_with(from, to, Some(&map)).class,
            MigrationClass::StateTransforming
        );
    }

    #[test]
    fn best_point_picks_cheapest_then_lowest_offset() {
        let from = FeatureSet::superset();
        let to = FeatureSet::minimal();
        let mut costly = point(0);
        costly.needs_vec = true;
        let map = MigrationPointMap {
            points: vec![costly, point(8), point(12)],
        };
        let (best, class) = map.best_point(from, to).expect("non-empty map");
        assert_eq!(best.offset, 8);
        assert_eq!(class, MigrationClass::Native);
    }
}
