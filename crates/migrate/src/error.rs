//! Structured errors for the migration/downgrade pipeline.
//!
//! Downgrade emulation sits between the compiler and the cycle
//! simulator, so its failures come from both sides: a phase whose IR
//! does not compile for the requested feature set, or an emulation
//! invariant (a memory operand or destination register that vanished
//! mid-transform — only possible on corrupted input). Each variant
//! names the phase, feature set, and block/instruction coordinates so
//! a sweep can report *which* migration failed without aborting the
//! rest.

use std::fmt;

use cisa_compiler::CompileError;
use cisa_isa::FeatureSet;

/// Errors of the migration/downgrade pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// The phase's IR failed to compile for a feature set.
    Compile {
        /// Benchmark name of the failing phase.
        benchmark: String,
        /// Phase index within the benchmark.
        phase: usize,
        /// The feature set the compile targeted.
        fs: FeatureSet,
        /// The underlying compiler error.
        source: CompileError,
    },
    /// An emulation-transform invariant failed on one instruction —
    /// seen only when the input code was corrupted in flight.
    Emulation {
        /// Block index within the compiled code.
        block: usize,
        /// Instruction index within the block.
        index: usize,
        /// What invariant broke.
        reason: &'static str,
    },
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::Compile {
                benchmark,
                phase,
                fs,
                source,
            } => write!(f, "compiling {benchmark} phase {phase} for {fs}: {source}"),
            MigrateError::Emulation {
                block,
                index,
                reason,
            } => write!(f, "emulating block {block}, instruction {index}: {reason}"),
        }
    }
}

impl std::error::Error for MigrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MigrateError::Compile { source, .. } => Some(source),
            MigrateError::Emulation { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_site() {
        let e = MigrateError::Emulation {
            block: 3,
            index: 7,
            reason: "memory operand vanished",
        };
        let msg = e.to_string();
        assert!(msg.contains("block 3"), "{msg}");
        assert!(msg.contains("instruction 7"), "{msg}");
    }
}
