//! Migration cost classes for query answers.
//!
//! The heterogeneous-ISA migration-measurement literature (Mavrogeorgis
//! et al., see PAPERS.md) distinguishes migrations by how much work the
//! runtime must do *before* the thread runs on the destination core:
//! state-transformation-free migrations cost essentially a scheduler
//! hop, while transforming migrations pay for binary rewriting and —
//! in the worst case — for changing the in-memory representation of
//! live state. The composite-ISA design collapses most migrations into
//! the cheap classes because every feature set shares one encoding; the
//! classes below expose the residual cost structure as a first-class
//! field in `cisa-serve` query answers.
//!
//! Classification is a pure function of the *(compiled-for, target)*
//! feature-set pair — no compilation or simulation — so it is cheap
//! enough to annotate every ranked alternative in a serving response.
//! The measured slowdown of a transforming migration is still available
//! through [`crate::downgrade_cost`].

use std::fmt;

use cisa_isa::{DowngradeGap, FeatureSet};

/// How expensive migrating a running process to a target core is, in
/// the Mavrogeorgis et al. taxonomy adapted to composite ISAs.
///
/// Ordered by cost: `Native < Transforming < StateTransforming`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MigrationClass {
    /// The target core implements a superset of the features the code
    /// uses: the paper's *upgrade* path. No translation, no state
    /// transformation — the migration costs only the scheduler hop and
    /// cold microarchitectural state.
    Native,
    /// The target misses features the code uses, but every gap is
    /// repairable with local binary transformations ([`crate::emulate`]):
    /// register-context-block spills, load-compute-store expansion,
    /// reverse if-conversion, scalarized vectors. Memory state keeps
    /// its representation, so the migration is still
    /// state-transformation-free in the Mavrogeorgis sense — it pays
    /// in post-migration execution overhead, not in migration latency.
    Transforming,
    /// The width gap (64-bit code on a 32-bit core) is in play: live
    /// 64-bit values and fat pointers must be re-represented
    /// (long-mode emulation keeps pointers in xmm registers), which
    /// transforms register *state*, not just code. The expensive class.
    StateTransforming,
}

impl MigrationClass {
    /// Every class, in ascending cost order. Dense tabulations (the
    /// fleet scheduler's per-phase class tensor, per-class counters)
    /// iterate and index through this array.
    pub const ALL: [MigrationClass; 3] = [
        MigrationClass::Native,
        MigrationClass::Transforming,
        MigrationClass::StateTransforming,
    ];

    /// Stable lowercase identifier used in JSON responses and METRICS
    /// documentation.
    pub fn name(self) -> &'static str {
        match self {
            MigrationClass::Native => "native",
            MigrationClass::Transforming => "transforming",
            MigrationClass::StateTransforming => "state_transforming",
        }
    }

    /// Dense index into [`MigrationClass::ALL`] (cost order).
    pub fn index(self) -> usize {
        match self {
            MigrationClass::Native => 0,
            MigrationClass::Transforming => 1,
            MigrationClass::StateTransforming => 2,
        }
    }

    /// Inverse of [`MigrationClass::index`]; `None` out of range.
    pub fn from_index(i: usize) -> Option<MigrationClass> {
        MigrationClass::ALL.get(i).copied()
    }
}

impl fmt::Display for MigrationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The full classification of one prospective migration: its cost
/// class plus the concrete feature gaps driving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationCost {
    /// The cost class.
    pub class: MigrationClass,
    /// The feature dimensions the target must emulate. Empty iff the
    /// class is [`MigrationClass::Native`] when produced by
    /// [`classify_migration`]; a map-refined cost
    /// ([`crate::classify_migration_with`]) may prove a cheaper class
    /// while keeping the feature-set-level gaps for reference.
    pub gaps: Vec<DowngradeGap>,
}

impl MigrationCost {
    /// Short human-readable gap labels (stable, used in JSON answers).
    pub fn gap_names(&self) -> Vec<&'static str> {
        self.gaps
            .iter()
            .map(|g| match g {
                DowngradeGap::RegisterDepth { .. } => "register_depth",
                DowngradeGap::RegisterWidth => "register_width",
                DowngradeGap::Complexity => "complexity",
                DowngradeGap::Predication => "predication",
                DowngradeGap::Simd => "simd",
            })
            .collect()
    }
}

/// Classifies migrating code compiled for `compiled_for` onto a core
/// implementing `target`.
///
/// # Example
///
/// ```
/// use cisa_isa::FeatureSet;
/// use cisa_migrate::{classify_migration, MigrationClass};
///
/// let superset = FeatureSet::superset();
/// let x86_64 = FeatureSet::x86_64();
/// // Upgrade: x86-64 code runs natively on the superset core.
/// assert_eq!(classify_migration(x86_64, superset).class,
///            MigrationClass::Native);
/// // Downgrade: superset code on an x86-64 core needs local
/// // transformations (deep registers, predication).
/// assert_eq!(classify_migration(superset, x86_64).class,
///            MigrationClass::Transforming);
/// // A width downgrade transforms live state.
/// let narrow: FeatureSet = "x86-16D-32W".parse().expect("valid name");
/// assert_eq!(classify_migration(x86_64, narrow).class,
///            MigrationClass::StateTransforming);
/// ```
pub fn classify_migration(compiled_for: FeatureSet, target: FeatureSet) -> MigrationCost {
    let gaps = target.downgrade_gaps(&compiled_for);
    let class = if gaps.is_empty() {
        MigrationClass::Native
    } else if gaps.contains(&DowngradeGap::RegisterWidth) {
        MigrationClass::StateTransforming
    } else {
        MigrationClass::Transforming
    };
    MigrationCost { class, gaps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_iff_covered() {
        let all = FeatureSet::all();
        for &from in &all {
            for &to in &all {
                let c = classify_migration(from, to);
                assert_eq!(c.class == MigrationClass::Native, to.covers(&from));
                assert_eq!(c.gaps.is_empty(), c.class == MigrationClass::Native);
            }
        }
    }

    #[test]
    fn width_gap_dominates_classification() {
        let all = FeatureSet::all();
        for &from in &all {
            for &to in &all {
                let c = classify_migration(from, to);
                let has_width = c.gaps.contains(&DowngradeGap::RegisterWidth);
                assert_eq!(c.class == MigrationClass::StateTransforming, has_width);
            }
        }
    }

    #[test]
    fn classes_are_ordered_by_cost() {
        assert!(MigrationClass::Native < MigrationClass::Transforming);
        assert!(MigrationClass::Transforming < MigrationClass::StateTransforming);
    }

    #[test]
    fn gap_names_are_stable() {
        let superset = FeatureSet::superset();
        let minimal = FeatureSet::minimal();
        let c = classify_migration(superset, minimal);
        let names = c.gap_names();
        for expected in [
            "register_depth",
            "register_width",
            "complexity",
            "predication",
            "simd",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
    }
}
