//! # cisa-migrate: process migration across composite-ISA cores
//!
//! Migration between overlapping feature sets is the composite-ISA
//! architecture's killer advantage over multi-vendor heterogeneity:
//! *upgrades* (moving to a core that implements a superset of the
//! features in use) run natively with zero translation, and
//! *downgrades* need only the minimal, local binary transformations of
//! [`downgrade`] — no fat binaries, no cross-ISA state transformation.
//!
//! [`migration`] replays multiprogrammed schedules with migration and
//! downgrade costs charged, reproducing the paper's Section VII-D
//! analysis (1,863 migrations, 0.42% average degradation).

//! [`classes`] classifies prospective migrations into the cost taxonomy
//! of the heterogeneous-ISA migration-measurement literature
//! (state-transformation-free vs. transforming), cheap enough to
//! annotate every alternative in a serving-layer query answer.

#![warn(missing_docs)]

pub mod classes;
pub mod downgrade;
pub mod error;
pub mod migration;
pub mod points;

pub use classes::{classify_migration, MigrationClass, MigrationCost};
pub use downgrade::{downgrade_cost, emulate, EmulationStats};
pub use error::MigrateError;
pub use migration::{MigrationConfig, MigrationReport, MigrationSim};
pub use points::{classify_migration_with, MigrationPoint, MigrationPointMap};
