//! Cross-crate integration tests: the full pipeline from benchmark
//! generation through compilation, trace expansion, cycle simulation,
//! and energy accounting.

use composite_isa::compiler::{compile, CompileOptions};
use composite_isa::isa::{Complexity, FeatureSet};
use composite_isa::power::energy;
use composite_isa::sim::{simulate, CoreConfig};
use composite_isa::workloads::{all_phases, generate, TraceGenerator, TraceParams};

fn run(bench: &str, fs: FeatureSet, cfg: &CoreConfig, uops: usize) -> (f64, f64) {
    let spec = all_phases()
        .into_iter()
        .find(|p| p.benchmark == bench)
        .unwrap();
    let code = compile(&generate(&spec), &fs, &CompileOptions::default()).unwrap();
    let trace = TraceGenerator::new(
        &code,
        &spec,
        TraceParams {
            max_uops: uops,
            seed: 1,
        },
    );
    let result = simulate(cfg, trace);
    let e = energy(cfg, &result);
    // Work-normalized: cycles per unit of phase work.
    let units = uops as f64 / code.stats.total_uops();
    (result.cycles as f64 / units, e.total_j / units)
}

#[test]
fn full_pipeline_runs_for_every_feature_set() {
    let spec = all_phases()
        .into_iter()
        .find(|p| p.benchmark == "milc")
        .unwrap();
    let ir = generate(&spec);
    for fs in FeatureSet::all() {
        let code =
            compile(&ir, &fs, &CompileOptions::default()).unwrap_or_else(|e| panic!("{fs}: {e}"));
        let trace = TraceGenerator::new(
            &code,
            &spec,
            TraceParams {
                max_uops: 4000,
                seed: 2,
            },
        );
        let cfg = CoreConfig::reference(fs);
        let r = simulate(&cfg, trace);
        assert!(r.cycles > 0 && r.activity.uops == 4000, "{fs}");
        let e = energy(&cfg, &r);
        assert!(e.total_j > 0.0 && e.total_j.is_finite(), "{fs}");
    }
}

#[test]
fn isa_affinity_hmmer_wants_deep_registers() {
    // hmmer is the paper's canonical register-pressure benchmark: depth
    // 64 must beat depth 16 end-to-end (compiled code + cycle sim).
    let d16: FeatureSet = "x86-16D-64W".parse().unwrap();
    let d64: FeatureSet = "x86-64D-64W".parse().unwrap();
    let (t16, _) = run("hmmer", d16, &CoreConfig::reference(d16), 24_000);
    let (t64, _) = run("hmmer", d64, &CoreConfig::reference(d64), 24_000);
    assert!(
        t64 < t16 * 0.95,
        "hmmer at depth 64 ({t64:.0}) must beat depth 16 ({t16:.0})"
    );
}

#[test]
fn isa_affinity_lbm_wants_sse() {
    let sse = FeatureSet::x86_64();
    let scalar: FeatureSet = "microx86-16D-64W".parse().unwrap();
    let (t_sse, _) = run("lbm", sse, &CoreConfig::reference(sse), 24_000);
    let (t_scalar, _) = run("lbm", scalar, &CoreConfig::reference(scalar), 24_000);
    assert!(
        t_sse < t_scalar,
        "lbm with SSE ({t_sse:.0}) must beat scalarized ({t_scalar:.0})"
    );
}

#[test]
fn little_cores_save_energy_big_cores_save_time() {
    let fs = FeatureSet::x86_64();
    let (t_big, e_big) = run("bzip2", fs, &CoreConfig::big(fs), 24_000);
    let (t_little, e_little) = run("bzip2", fs, &CoreConfig::little(fs), 24_000);
    assert!(t_big < t_little, "big core must be faster");
    assert!(e_little < e_big, "little core must use less energy");
}

#[test]
fn microx86_is_single_uop_end_to_end() {
    let spec = all_phases()
        .into_iter()
        .find(|p| p.benchmark == "gobmk")
        .unwrap();
    for fs in FeatureSet::all()
        .into_iter()
        .filter(|f| f.complexity() == Complexity::MicroX86)
    {
        let code = compile(&generate(&spec), &fs, &CompileOptions::default()).unwrap();
        for b in &code.blocks {
            for inst in &b.insts {
                assert!(
                    inst.uop_count() == 1,
                    "{fs}: microx86 instruction decodes into {} uops: {inst}",
                    inst.uop_count()
                );
            }
        }
    }
}

#[test]
fn code_density_shrinks_with_fewer_prefixes() {
    // Deep register files cost REXBC prefixes: depth-64 code must be
    // larger than the same phase at depth 16.
    let spec = all_phases()
        .into_iter()
        .find(|p| p.benchmark == "hmmer")
        .unwrap();
    let ir = generate(&spec);
    let opts = CompileOptions::default();
    let c16 = compile(&ir, &"microx86-16D-32W".parse().unwrap(), &opts).unwrap();
    let c64 = compile(&ir, &"microx86-64D-32W".parse().unwrap(), &opts).unwrap();
    assert!(
        c64.stats.avg_inst_bytes > c16.stats.avg_inst_bytes,
        "REXBC prefixes lengthen encodings: {} vs {}",
        c64.stats.avg_inst_bytes,
        c16.stats.avg_inst_bytes
    );
}
