//! Headline results: the paper's core claims, checked end-to-end on a
//! reduced (one-phase-per-benchmark) table so the test completes in
//! about a minute.
//!
//! Paper (Section VII): composite-ISA designs consistently outperform
//! single-ISA heterogeneous designs, match-or-beat vendor
//! heterogeneous-ISA designs, and reduce EDP; migration costs are
//! negligible because feature sets overlap.

use composite_isa::explore::multicore::{Budget, Evaluator, Objective};
use composite_isa::explore::{search_system, DesignSpace, PerfTable, SystemKind};
use composite_isa::workloads::all_phases;
use std::sync::OnceLock;

fn fixtures() -> &'static (DesignSpace, PerfTable) {
    static CELL: OnceLock<(DesignSpace, PerfTable)> = OnceLock::new();
    CELL.get_or_init(|| {
        let space = DesignSpace::new();
        let phases: Vec<_> = all_phases().into_iter().filter(|p| p.index == 0).collect();
        let table = PerfTable::build_for_phases(&space, &phases);
        (space, table)
    })
}

fn scores(objective: Objective, budget: Budget) -> Vec<(SystemKind, f64)> {
    let (space, table) = fixtures();
    let eval = Evaluator::new(space, table, 12);
    let cfg = composite_isa::explore::multicore::SearchConfig::default();
    SystemKind::ALL
        .iter()
        .map(|&k| {
            let s = search_system(&eval, k, objective, budget, &cfg)
                .map(|r| r.score)
                .unwrap_or(0.0);
            (k, s)
        })
        .collect()
}

fn score_of(v: &[(SystemKind, f64)], k: SystemKind) -> f64 {
    v.iter().find(|(x, _)| *x == k).map(|(_, s)| *s).unwrap()
}

#[test]
fn composite_beats_single_isa_heterogeneous_on_throughput() {
    for budget in [
        Budget::PeakPower(20.0),
        Budget::PeakPower(40.0),
        Budget::Area(64.0),
    ] {
        let v = scores(Objective::Throughput, budget);
        let composite = score_of(&v, SystemKind::CompositeFull);
        let single = score_of(&v, SystemKind::SingleIsaHetero);
        assert!(
            composite >= single * 0.995,
            "{budget:?}: composite {composite:.4} vs single-ISA {single:.4}"
        );
    }
}

#[test]
fn composite_matches_vendor_heterogeneous() {
    // The paper's goal line: recreate (and often exceed) multi-vendor
    // ISA heterogeneity with a single ISA.
    for budget in [Budget::PeakPower(40.0), Budget::Area(64.0)] {
        let v = scores(Objective::Throughput, budget);
        let composite = score_of(&v, SystemKind::CompositeFull);
        let vendor = score_of(&v, SystemKind::VendorHetero);
        assert!(
            composite >= vendor * 0.97,
            "{budget:?}: composite {composite:.4} vs vendor {vendor:.4}"
        );
    }
}

#[test]
fn heterogeneity_beats_homogeneity() {
    let v = scores(Objective::Throughput, Budget::PeakPower(40.0));
    let hom = score_of(&v, SystemKind::Homogeneous);
    let het = score_of(&v, SystemKind::SingleIsaHetero);
    let composite = score_of(&v, SystemKind::CompositeFull);
    assert!(
        het >= hom * 0.995,
        "hardware heterogeneity helps: {het:.4} vs {hom:.4}"
    );
    assert!(
        composite >= hom,
        "feature diversity helps: {composite:.4} vs {hom:.4}"
    );
}

#[test]
fn composite_improves_edp() {
    let v = scores(Objective::Edp, Budget::PeakPower(40.0));
    let composite = score_of(&v, SystemKind::CompositeFull);
    let single = score_of(&v, SystemKind::SingleIsaHetero);
    assert!(
        composite >= single * 0.995,
        "EDP gain: composite {composite:.4} vs single-ISA {single:.4}"
    );
}

#[test]
fn single_thread_gains_from_feature_diversity() {
    let v = scores(Objective::SingleThread, Budget::PeakPower(10.0));
    let composite = score_of(&v, SystemKind::CompositeFull);
    let single = score_of(&v, SystemKind::SingleIsaHetero);
    assert!(
        composite >= single * 0.995,
        "single-thread: composite {composite:.4} vs single-ISA {single:.4}"
    );
}
