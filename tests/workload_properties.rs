//! Randomized integration tests over the workload-to-simulation
//! pipeline, driven by a seeded [`SmallRng`] for deterministic case
//! selection.

use composite_isa::compiler::{compile, CompileOptions};
use composite_isa::isa::FeatureSet;
use composite_isa::sim::{simulate, CoreConfig};
use composite_isa::workloads::{all_phases, generate, TraceGenerator, TraceParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Any phase compiled to any feature set produces code whose every
/// instruction is legal under that feature set, and the trace it
/// expands to simulates without panicking on any reference core.
#[test]
fn compile_trace_simulate_is_total() {
    let mut rng = SmallRng::seed_from_u64(0x3072_0001);
    let phases = all_phases();
    let fss = FeatureSet::all();
    for _ in 0..16 {
        let spec = &phases[rng.gen_range(0..phases.len())];
        let fs = fss[rng.gen_range(0..fss.len())];
        let code = compile(&generate(spec), &fs, &CompileOptions::default()).unwrap();
        for b in &code.blocks {
            for inst in &b.insts {
                assert!(inst.legal_under(&fs), "{inst} illegal under {fs}");
            }
        }
        let trace = TraceGenerator::new(
            &code,
            spec,
            TraceParams {
                max_uops: 1500,
                seed: 9,
            },
        );
        let r = simulate(&CoreConfig::reference(fs), trace);
        assert!(r.cycles >= 1500 / 4, "IPC cannot exceed pipeline width");
        assert_eq!(r.activity.uops, 1500);
    }
}

/// Trace generation with different seeds preserves the static code
/// layout (same PCs) while varying dynamic outcomes.
#[test]
fn trace_seeds_vary_outcomes_not_layout() {
    let mut rng = SmallRng::seed_from_u64(0x3072_0002);
    let spec = &all_phases()[5];
    let fs = FeatureSet::x86_64();
    let code = compile(&generate(spec), &fs, &CompileOptions::default()).unwrap();
    for _ in 0..16 {
        let seed_a = rng.gen_range(0..100u64);
        let seed_b = rng.gen_range(100..200u64);
        let ta: Vec<_> = TraceGenerator::new(
            &code,
            spec,
            TraceParams {
                max_uops: 600,
                seed: seed_a,
            },
        )
        .collect();
        let tb: Vec<_> = TraceGenerator::new(
            &code,
            spec,
            TraceParams {
                max_uops: 600,
                seed: seed_b,
            },
        )
        .collect();
        // First macro-op is deterministic.
        assert_eq!(ta[0].pc, tb[0].pc);
        // PC sets intersect heavily (same static code).
        let pcs_a: std::collections::HashSet<u64> = ta.iter().map(|u| u.pc).collect();
        let pcs_b: std::collections::HashSet<u64> = tb.iter().map(|u| u.pc).collect();
        let shared = pcs_a.intersection(&pcs_b).count();
        assert!(
            shared * 2 >= pcs_a.len().min(pcs_b.len()),
            "layouts must match"
        );
    }
}

/// The feature-set coverage lattice is sound end-to-end: code for a
/// covered set always runs unmodified under the covering set's
/// legality rules. Exhaustive over all 26 x 26 pairs; code is compiled
/// once per covered set.
#[test]
fn coverage_lattice_is_sound() {
    let all = FeatureSet::all();
    let spec = &all_phases()[0];
    for &fb in &all {
        let code = compile(&generate(spec), &fb, &CompileOptions::default()).unwrap();
        for &fa in &all {
            if !fa.covers(&fb) {
                continue;
            }
            for blk in &code.blocks {
                for inst in &blk.insts {
                    assert!(inst.legal_under(&fa), "{fa} covers {fb} but rejects {inst}");
                }
            }
        }
    }
}
