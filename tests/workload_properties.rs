//! Property-based integration tests over the workload-to-simulation
//! pipeline.

use composite_isa::compiler::{compile, CompileOptions};
use composite_isa::isa::FeatureSet;
use composite_isa::sim::{simulate, CoreConfig};
use composite_isa::workloads::{all_phases, generate, TraceGenerator, TraceParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any phase compiled to any feature set produces code whose every
    /// instruction is legal under that feature set, and the trace it
    /// expands to simulates without panicking on any reference core.
    #[test]
    fn compile_trace_simulate_is_total(phase_idx in 0usize..49, fs_idx in 0usize..26) {
        let spec = &all_phases()[phase_idx];
        let fs = FeatureSet::all()[fs_idx];
        let code = compile(&generate(spec), &fs, &CompileOptions::default()).unwrap();
        for b in &code.blocks {
            for inst in &b.insts {
                prop_assert!(inst.legal_under(&fs), "{inst} illegal under {fs}");
            }
        }
        let trace = TraceGenerator::new(&code, spec, TraceParams { max_uops: 1500, seed: 9 });
        let r = simulate(&CoreConfig::reference(fs), trace);
        prop_assert!(r.cycles >= 1500 / 4, "IPC cannot exceed pipeline width");
        prop_assert_eq!(r.activity.uops, 1500);
    }

    /// Trace generation with different seeds preserves the static code
    /// layout (same PCs) while varying dynamic outcomes.
    #[test]
    fn trace_seeds_vary_outcomes_not_layout(seed_a in 0u64..100, seed_b in 100u64..200) {
        let spec = &all_phases()[5];
        let fs = FeatureSet::x86_64();
        let code = compile(&generate(spec), &fs, &CompileOptions::default()).unwrap();
        let ta: Vec<_> = TraceGenerator::new(&code, spec, TraceParams { max_uops: 600, seed: seed_a }).collect();
        let tb: Vec<_> = TraceGenerator::new(&code, spec, TraceParams { max_uops: 600, seed: seed_b }).collect();
        // First macro-op is deterministic.
        prop_assert_eq!(ta[0].pc, tb[0].pc);
        // PC sets intersect heavily (same static code).
        let pcs_a: std::collections::HashSet<u64> = ta.iter().map(|u| u.pc).collect();
        let pcs_b: std::collections::HashSet<u64> = tb.iter().map(|u| u.pc).collect();
        let shared = pcs_a.intersection(&pcs_b).count();
        prop_assert!(shared * 2 >= pcs_a.len().min(pcs_b.len()), "layouts must match");
    }

    /// The feature-set coverage lattice is sound end-to-end: code for a
    /// covered set always runs unmodified under the covering set's
    /// legality rules.
    #[test]
    fn coverage_lattice_is_sound(a in 0usize..26, b in 0usize..26) {
        let all = FeatureSet::all();
        let (fa, fb) = (all[a], all[b]);
        if fa.covers(&fb) {
            let spec = &all_phases()[0];
            let code = compile(&generate(spec), &fb, &CompileOptions::default()).unwrap();
            for blk in &code.blocks {
                for inst in &blk.insts {
                    prop_assert!(inst.legal_under(&fa), "{fa} covers {fb} but rejects {inst}");
                }
            }
        }
    }
}
