//! # composite-isa
//!
//! A from-scratch Rust reproduction of **"Composite-ISA Cores: Enabling
//! Multi-ISA Heterogeneity Using a Single ISA"** (Venkat, Basavaraj,
//! Tullsen — HPCA 2019): the superset-ISA feature model, a compiler back
//! end that targets all 26 derivable feature sets, an x86-style decode
//! engine with a structural RTL model, a cycle-level CPU simulator, a
//! McPAT-style power model, the 4,680-point design-space exploration,
//! and the migration/downgrade machinery.
//!
//! This crate is a facade re-exporting the subsystem crates:
//!
//! - [`isa`] — feature sets, encoding, vendor ISA models
//! - [`compiler`] — IR, if-conversion, instruction selection, register
//!   allocation
//! - [`workloads`] — the 8 benchmark models, 49 phases, trace generation
//! - [`decode`] — micro-op cache / decoder models and RTL estimates
//! - [`sim`] — in-order and out-of-order pipeline models
//! - [`power`] — area/peak-power budgets and energy accounting
//! - [`explore`] — the design-space exploration and multicore search
//! - [`migrate`] — feature-downgrade emulation and migration replay
//!
//! # Quickstart
//!
//! ```
//! use composite_isa::isa::FeatureSet;
//! use composite_isa::compiler::{compile, CompileOptions};
//! use composite_isa::workloads::{all_phases, generate};
//!
//! let spec = &all_phases()[0];
//! let code = compile(&generate(spec), &FeatureSet::x86_64(), &CompileOptions::default())?;
//! assert!(code.stats.total_uops() > 0.0);
//! # Ok::<(), composite_isa::compiler::CompileError>(())
//! ```

pub use cisa_compiler as compiler;
pub use cisa_decode as decode;
pub use cisa_explore as explore;
pub use cisa_isa as isa;
pub use cisa_migrate as migrate;
pub use cisa_power as power;
pub use cisa_sim as sim;
pub use cisa_workloads as workloads;
