//! Quickstart: compile one benchmark phase for two composite feature
//! sets, run both on the cycle simulator, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use composite_isa::compiler::{compile, CompileOptions};
use composite_isa::isa::FeatureSet;
use composite_isa::power::{core_budget, energy};
use composite_isa::sim::{simulate, CoreConfig};
use composite_isa::workloads::{all_phases, generate, TraceGenerator, TraceParams};

fn main() {
    // Pick the register-pressure-heavy hmmer benchmark.
    let spec = all_phases()
        .into_iter()
        .find(|p| p.benchmark == "hmmer")
        .expect("hmmer exists");
    let ir = generate(&spec);
    println!("workload: {} ({} IR blocks)", spec.name(), ir.blocks.len());

    for fs_name in ["x86-16D-64W", "x86-64D-64W"] {
        let fs: FeatureSet = fs_name.parse().expect("valid name");
        let code = compile(&ir, &fs, &CompileOptions::default()).expect("compiles");
        let cfg = CoreConfig::reference(fs);
        let params = TraceParams::default();
        let trace = TraceGenerator::new(&code, &spec, params);
        let result = simulate(&cfg, trace);
        let e = energy(&cfg, &result);
        let b = core_budget(&cfg);
        // Both runs execute the same number of micro-ops, but spill
        // code inflates the micro-ops needed per unit of real work —
        // compare cycles and energy *per work unit*, not per uop.
        let units = params.max_uops as f64 / code.stats.total_uops();
        println!("\n{fs_name} on {}:", cfg.describe());
        println!(
            "  spill refills/unit: {:.0}",
            code.stats.regalloc.dyn_refill_loads
        );
        println!(
            "  IPC {:.3}  cycles/work-unit {:.0}  energy/work-unit {:.2e} J",
            result.ipc(),
            result.cycles as f64 / units,
            e.total_j / units
        );
        println!(
            "  core budget: {:.1} W peak, {:.1} mm2",
            b.peak_power_w, b.area_mm2
        );
    }
    println!("\nhmmer wants 64 registers: the depth-64 run eliminates the spill refills.");
}
