//! ISA affinity: which feature set does each benchmark prefer on a
//! common microarchitecture?
//!
//! ```sh
//! cargo run --release --example isa_affinity
//! ```

use composite_isa::explore::space::all_microarchs;
use composite_isa::explore::{evaluate, probe};
use composite_isa::isa::FeatureSet;
use composite_isa::sim::ExecSemantics;
use composite_isa::workloads::all_benchmarks;

fn main() {
    // A mid-range OoO microarchitecture.
    let ua = all_microarchs()
        .into_iter()
        .find(|u| {
            u.sem == ExecSemantics::OutOfOrder
                && u.width == 2
                && u.int_alu == 3
                && u.fp_alu == 1
                && u.l1_kb == 32
                && u.l2_kb == 1024
                && u.window.rob == 64
        })
        .expect("reference microarch");
    println!(
        "feature-set affinity on {:?}-wide OoO (lower time wins):\n",
        ua.width
    );
    for b in all_benchmarks() {
        let spec = &b.phases[0];
        let mut best: Option<(FeatureSet, f64)> = None;
        let mut worst: Option<(FeatureSet, f64)> = None;
        for fs in FeatureSet::all() {
            let prof = probe(spec, fs);
            let perf = evaluate(&prof, &ua, &ua.with_fs(fs));
            let t = perf.cycles_per_unit;
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((fs, t));
            }
            if worst.is_none_or(|(_, wt)| t > wt) {
                worst = Some((fs, t));
            }
        }
        let (bfs, bt) = best.expect("26 sets");
        let (wfs, wt) = worst.expect("26 sets");
        println!(
            "{:<12} best {:<20} worst {:<20} spread {:.2}x",
            b.name,
            bfs.to_string(),
            wfs.to_string(),
            wt / bt
        );
    }
    println!("\nhmmer wants depth 64; lbm wants SSE; branchy codes want full predication.");
}
