//! Migration and feature-downgrade demo: compile sjeng for the superset
//! ISA, then emulate it on progressively weaker cores.
//!
//! ```sh
//! cargo run --release --example migration_demo
//! ```

use composite_isa::compiler::{compile, CompileOptions};
use composite_isa::isa::FeatureSet;
use composite_isa::migrate::{downgrade_cost, emulate};
use composite_isa::workloads::{all_phases, generate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = all_phases()
        .into_iter()
        .find(|p| p.benchmark == "sjeng")
        .expect("sjeng exists");
    let superset = FeatureSet::superset();
    let code = compile(&generate(&spec), &superset, &CompileOptions::default()).expect("compiles");
    println!(
        "{} compiled for {}: {:.0} uops/unit",
        spec.name(),
        superset,
        code.stats.total_uops()
    );

    for target in [
        "x86-64D-64W",
        "x86-16D-64W",
        "microx86-16D-32W",
        "microx86-8D-32W",
    ] {
        let fs: FeatureSet = target.parse().expect("valid");
        let (emulated, stats) = emulate(&code, &fs)?;
        let cost = downgrade_cost(&spec, superset, fs)?;
        println!(
            "\nmigrate to {target} ({} feature gaps):",
            fs.downgrade_gaps(&superset).len()
        );
        println!("  emulation: {} mem-op expansions, {} RCB accesses, {} double-pumps, {} reverse if-conversions",
            stats.expanded_mem_ops, stats.rcb_accesses, stats.double_pumped, stats.reverse_if_conversions);
        println!(
            "  static instructions: {} -> {}",
            code.blocks.iter().map(|b| b.insts.len()).sum::<usize>(),
            emulated.blocks.iter().map(|b| b.insts.len()).sum::<usize>()
        );
        println!("  measured slowdown: {:+.1}%", (cost - 1.0) * 100.0);
    }
    println!("\nupgrades (moving to a covering core) are always free: no translation at all.");
    Ok(())
}
