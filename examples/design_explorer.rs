//! Design exploration in miniature: search for the best composite-ISA
//! 4-core multicore under a 40W budget over a reduced phase set, and
//! compare against the single-ISA heterogeneous baseline.
//!
//! ```sh
//! cargo run --release --example design_explorer
//! ```

use composite_isa::explore::multicore::{Budget, Evaluator, Objective, SearchConfig};
use composite_isa::explore::{search_system, DesignSpace, PerfTable, SystemKind};
use composite_isa::workloads::all_phases;

fn main() {
    let space = DesignSpace::new();
    println!(
        "design space: {} feature sets x {} microarchitectures = {} points",
        space.feature_sets.len(),
        space.microarchs.len(),
        space.len()
    );

    // One phase per benchmark keeps this example under a minute.
    let phases: Vec<_> = all_phases().into_iter().filter(|p| p.index == 0).collect();
    println!("probing {} phases...", phases.len());
    let table = PerfTable::build_for_phases(&space, &phases);
    let eval = Evaluator::new(&space, &table, 12);
    let cfg = SearchConfig::default();

    for kind in [SystemKind::SingleIsaHetero, SystemKind::CompositeFull] {
        let r = search_system(
            &eval,
            kind,
            Objective::Throughput,
            Budget::PeakPower(40.0),
            &cfg,
        )
        .expect("40W is feasible");
        println!("\n{} (score {:.3}):", kind.label(), r.score);
        for c in &r.cores {
            println!("  {}", c.describe(&space));
        }
    }
}
